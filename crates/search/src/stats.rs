//! Per-query statistics — the quantities reported in the paper's figures,
//! plus per-stage observability for the staged bound cascade.
//!
//! [`SearchStats`] is the *per-call* record handed back with every query;
//! [`SearchStats::record_metrics`] additionally flushes it into the global
//! `treesim-obs` registry so long-running processes accumulate
//! process-wide funnels (`cascade.<stage>.evaluated`/`.pruned`) and
//! latency histograms without holding onto individual stats.

use std::fmt;
use std::time::Duration;

/// Measurements for one stage of the lower-bound cascade.
///
/// A cascade evaluates bounds coarsest-first; a candidate only reaches
/// stage `s + 1` if stage `s` could not prune it, so `evaluated` is
/// non-increasing across stages and `evaluated − pruned` of the final
/// stage is the refinement candidate set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Stage name ("size", "bdist", "propt", …).
    pub name: &'static str,
    /// Candidates whose bound was computed at this stage.
    pub evaluated: usize,
    /// Candidates this stage eliminated (never saw later stages).
    pub pruned: usize,
    /// Wall-clock time spent computing this stage's bounds.
    pub time: Duration,
}

impl StageStats {
    /// A fresh accumulator for the named stage.
    pub fn named(name: &'static str) -> Self {
        StageStats {
            name,
            ..Default::default()
        }
    }

    /// Candidates that survived this stage.
    pub fn survivors(&self) -> usize {
        self.evaluated.saturating_sub(self.pruned)
    }
}

/// A sparse log₂ histogram of per-query total latencies (microseconds),
/// sharing `treesim-obs`'s bucket geometry ([`treesim_obs::bucket_index`]
/// / [`treesim_obs::bucket_upper_edge`]), so its quantiles carry the same
/// factor-of-2 error bound as the registry's histograms.
///
/// Empty on a fresh per-query [`SearchStats`];
/// [`SearchStats::accumulate`] records one sample per accumulated query
/// (or merges buckets when accumulating pre-accumulated totals), so
/// workload accumulators grow a latency distribution for free and
/// [`AveragedStats`] can report tail latencies, not just means.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyBuckets {
    /// `(bucket index, count)` pairs, ascending by index, counts > 0.
    buckets: Vec<(u8, u64)>,
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyBuckets {
    /// Records one query latency (in microseconds).
    pub fn record_micros(&mut self, us: u64) {
        let index = treesim_obs::bucket_index(us) as u8;
        match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (index, 1)),
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(us);
        self.max = self.max.max(us);
    }

    /// Merges another accumulator's samples into this one.
    pub fn merge(&mut self, other: &LatencyBuckets) {
        for &(index, count) in &other.buckets {
            match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += count,
                Err(pos) => self.buckets.insert(pos, (index, count)),
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest recorded latency (µs); 0 when empty.
    pub fn max_us(&self) -> u64 {
        self.max
    }

    /// Estimated `q`-quantile latency in microseconds (same estimator as
    /// [`treesim_obs::HistogramSnapshot::quantile`]: the upper edge of
    /// the bucket holding the rank-`⌈q·count⌉` sample, clamped to the
    /// observed maximum). Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return treesim_obs::bucket_upper_edge(usize::from(index)).min(self.max);
            }
        }
        self.max
    }

    /// Median latency estimate (µs).
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 90th-percentile latency estimate (µs).
    pub fn p90_us(&self) -> u64 {
        self.quantile_us(0.90)
    }

    /// 99th-percentile latency estimate (µs).
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }
}

/// Measurements collected while answering one similarity query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of trees in the dataset.
    pub dataset_size: usize,
    /// Trees whose real edit distance was computed (true + false positives —
    /// the "% of accessed data" numerator of Figures 7–14). Includes
    /// refinements the bounded DP cut off at the budget.
    pub refined: usize,
    /// Refinements the bounded Zhang–Shasha cut off at the live budget:
    /// the distance was proven `> τ` (or beyond the current k-th heap
    /// distance) without being computed exactly. Always `≤ refined`.
    pub refine_cutoffs: usize,
    /// DP cells the bounded refinement skipped via its band / subproblem
    /// pruning, summed over this query's refinements.
    pub refine_bands_skipped: u64,
    /// Trees in the final result set (true positives).
    pub results: usize,
    /// Time spent computing lower bounds (all cascade stages).
    pub filter_time: Duration,
    /// Time spent computing real edit distances.
    pub refine_time: Duration,
    /// Per-stage cascade breakdown, coarsest stage first. Empty for
    /// engines that do not run a cascade.
    pub stages: Vec<StageStats>,
    /// Worker threads that produced these numbers (1 for a single query;
    /// the batch APIs record the pool size).
    pub threads: usize,
    /// Per-query total-latency distribution. Empty on a single query's
    /// stats; populated by [`SearchStats::accumulate`] (one sample per
    /// accumulated query), so workload totals carry p50/p90/p99 tails.
    pub latency: LatencyBuckets,
}

impl Default for SearchStats {
    fn default() -> Self {
        SearchStats {
            dataset_size: 0,
            refined: 0,
            refine_cutoffs: 0,
            refine_bands_skipped: 0,
            results: 0,
            filter_time: Duration::ZERO,
            refine_time: Duration::ZERO,
            stages: Vec::new(),
            threads: 1,
            latency: LatencyBuckets::default(),
        }
    }
}

impl SearchStats {
    /// The paper's headline metric:
    /// `(|TruePositive| + |FalsePositive|) / |Dataset| × 100 %`.
    pub fn accessed_percent(&self) -> f64 {
        if self.dataset_size == 0 {
            return 0.0;
        }
        self.refined as f64 / self.dataset_size as f64 * 100.0
    }

    /// Fraction of the result set within the accessed data (selectivity).
    pub fn result_percent(&self) -> f64 {
        if self.dataset_size == 0 {
            return 0.0;
        }
        self.results as f64 / self.dataset_size as f64 * 100.0
    }

    /// Total query time.
    pub fn total_time(&self) -> Duration {
        self.filter_time + self.refine_time
    }

    /// Bounds computed at the final (most expensive) cascade stage — for
    /// the positional filter, the number of `propt` binary searches.
    pub fn final_stage_evaluated(&self) -> usize {
        self.stages.last().map_or(0, |s| s.evaluated)
    }

    /// Accumulates another query's stats (for workload averages).
    ///
    /// Accumulation only makes sense across queries against the **same
    /// dataset**: `accessed_percent`/`result_percent` divide by one shared
    /// `dataset_size`.
    ///
    /// # Panics
    ///
    /// Panics if both sides carry a non-zero `dataset_size` and they
    /// disagree (mixing stats from different datasets). A zero
    /// `dataset_size` means "not yet attributed" (the `Default`
    /// accumulator) and adopts the other side's size.
    pub fn accumulate(&mut self, other: &SearchStats) {
        if self.dataset_size == 0 {
            self.dataset_size = other.dataset_size;
        } else if other.dataset_size != 0 {
            assert_eq!(
                self.dataset_size, other.dataset_size,
                "accumulating stats from different datasets"
            );
        }
        self.refined += other.refined;
        self.refine_cutoffs += other.refine_cutoffs;
        self.refine_bands_skipped += other.refine_bands_skipped;
        self.results += other.results;
        self.filter_time += other.filter_time;
        self.refine_time += other.refine_time;
        self.threads = self.threads.max(other.threads);
        if other.latency.is_empty() {
            // `other` is one query's stats: its total time is one sample.
            self.latency
                .record_micros(u64::try_from(other.total_time().as_micros()).unwrap_or(u64::MAX));
        } else {
            // `other` is itself an accumulator: merge its distribution.
            self.latency.merge(&other.latency);
        }
        if self.stages.is_empty() {
            self.stages = other.stages.clone();
        } else if !other.stages.is_empty() {
            assert_eq!(
                self.stages.len(),
                other.stages.len(),
                "accumulating stats from different cascades"
            );
            for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
                assert_eq!(mine.name, theirs.name, "cascade stage order changed");
                mine.evaluated += theirs.evaluated;
                mine.pruned += theirs.pruned;
                mine.time += theirs.time;
            }
        }
    }

    /// Flushes this query's counters into the global `treesim-obs`
    /// registry under `prefix` (`"engine.knn"`, `"engine.range"`,
    /// `"dynamic.knn"`, …): per-prefix query/refined/result counters and
    /// filter/refine latency histograms, plus the shared per-stage funnel
    /// counters `cascade.<stage>.evaluated` / `cascade.<stage>.pruned`
    /// and `cascade.<stage>.us` time histograms.
    ///
    /// Metric recording never changes query results; it only accumulates
    /// what already happened.
    pub fn record_metrics(&self, prefix: &str) {
        use treesim_obs::metrics::{counter, histogram};
        counter(&format!("{prefix}.queries")).inc();
        counter(&format!("{prefix}.refined")).add(self.refined as u64);
        counter(&format!("{prefix}.cutoffs")).add(self.refine_cutoffs as u64);
        counter(&format!("{prefix}.results")).add(self.results as u64);
        histogram(&format!("{prefix}.filter.us")).record_duration(self.filter_time);
        histogram(&format!("{prefix}.refine.us")).record_duration(self.refine_time);
        for stage in &self.stages {
            counter(&format!("cascade.{}.evaluated", stage.name)).add(stage.evaluated as u64);
            counter(&format!("cascade.{}.pruned", stage.name)).add(stage.pruned as u64);
            histogram(&format!("cascade.{}.us", stage.name)).record_duration(stage.time);
        }
    }

    /// Divides accumulated counters by the number of queries.
    pub fn averaged(&self, queries: usize) -> AveragedStats {
        let q = queries.max(1) as f64;
        AveragedStats {
            queries,
            dataset_size: self.dataset_size,
            avg_refined: self.refined as f64 / q,
            avg_results: self.results as f64 / q,
            avg_accessed_percent: self.accessed_percent() / q,
            avg_result_percent: self.result_percent() / q,
            avg_filter_time: self.filter_time.div_f64(q),
            avg_refine_time: self.refine_time.div_f64(q),
            avg_stages: self
                .stages
                .iter()
                .map(|s| AveragedStage {
                    name: s.name,
                    avg_evaluated: s.evaluated as f64 / q,
                    avg_pruned: s.pruned as f64 / q,
                    avg_time: s.time.div_f64(q),
                })
                .collect(),
            latency: self.latency.clone(),
        }
    }
}

impl fmt::Display for StageStats {
    /// One funnel line: `stage   size: evaluated     60, pruned     40 (1.2µs)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {:>6}: evaluated {:>6}, pruned {:>6} ({:.1?})",
            self.name, self.evaluated, self.pruned, self.time
        )
    }
}

impl fmt::Display for SearchStats {
    /// The CLI/report rendering: a summary line, then — for multi-stage
    /// cascades — one indented funnel line per stage. No trailing newline.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "-- {} results; accessed {}/{} trees ({:.2}%); filter {:.1?}, refine {:.1?}",
            self.results,
            self.refined,
            self.dataset_size,
            self.accessed_percent(),
            self.filter_time,
            self.refine_time,
        )?;
        if self.refine_cutoffs > 0 {
            write!(
                f,
                "; {} refinements cut off at τ ({} cells skipped)",
                self.refine_cutoffs, self.refine_bands_skipped,
            )?;
        }
        if !self.latency.is_empty() {
            write!(
                f,
                "; latency p50 {}µs, p90 {}µs, p99 {}µs",
                self.latency.p50_us(),
                self.latency.p90_us(),
                self.latency.p99_us(),
            )?;
        }
        if self.stages.len() > 1 {
            for stage in &self.stages {
                write!(f, "\n--   {stage}")?;
            }
        }
        Ok(())
    }
}

/// One cascade stage averaged over a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedStage {
    /// Stage name.
    pub name: &'static str,
    /// Mean bounds computed per query at this stage.
    pub avg_evaluated: f64,
    /// Mean candidates pruned per query at this stage.
    pub avg_pruned: f64,
    /// Mean wall-clock per query at this stage.
    pub avg_time: Duration,
}

/// Workload-averaged statistics (the paper averages over 100 queries).
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedStats {
    /// Number of queries averaged over.
    pub queries: usize,
    /// Dataset size.
    pub dataset_size: usize,
    /// Mean number of refined (accessed) trees per query.
    pub avg_refined: f64,
    /// Mean result-set size per query.
    pub avg_results: f64,
    /// Mean accessed-data percentage per query.
    pub avg_accessed_percent: f64,
    /// Mean result percentage per query.
    pub avg_result_percent: f64,
    /// Mean filtering time per query.
    pub avg_filter_time: Duration,
    /// Mean refinement time per query.
    pub avg_refine_time: Duration,
    /// Mean per-stage cascade breakdown.
    pub avg_stages: Vec<AveragedStage>,
    /// The accumulated per-query latency distribution (quantiles are not
    /// averaged — they come straight from the accumulator's buckets).
    pub latency: LatencyBuckets,
}

impl AveragedStats {
    /// Mean total time per query.
    pub fn avg_total_time(&self) -> Duration {
        self.avg_filter_time + self.avg_refine_time
    }
}

impl fmt::Display for AveragedStage {
    /// One averaged funnel line:
    /// `stage   size: avg evaluated    400.00, avg pruned    340.00 (1.2µs)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {:>6}: avg evaluated {:>9.2}, avg pruned {:>9.2} ({:.1?})",
            self.name, self.avg_evaluated, self.avg_pruned, self.avg_time
        )
    }
}

impl fmt::Display for AveragedStats {
    /// Workload rendering: one summary line, then — for multi-stage
    /// cascades — one indented funnel line per stage. No trailing newline.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "-- {} queries over {} trees; avg accessed {:.2}% ({:.1} trees), avg results {:.1}; avg filter {:.1?}, avg refine {:.1?}",
            self.queries,
            self.dataset_size,
            self.avg_accessed_percent,
            self.avg_refined,
            self.avg_results,
            self.avg_filter_time,
            self.avg_refine_time,
        )?;
        if !self.latency.is_empty() {
            write!(
                f,
                "\n--   latency p50 {}µs, p90 {}µs, p99 {}µs (max {}µs over {} samples)",
                self.latency.p50_us(),
                self.latency.p90_us(),
                self.latency.p99_us(),
                self.latency.max_us(),
                self.latency.count(),
            )?;
        }
        if self.avg_stages.len() > 1 {
            for stage in &self.avg_stages {
                write!(f, "\n--   {stage}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessed_percent_basic() {
        let stats = SearchStats {
            dataset_size: 200,
            refined: 10,
            results: 5,
            ..Default::default()
        };
        assert!((stats.accessed_percent() - 5.0).abs() < 1e-12);
        assert!((stats.result_percent() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_is_zero_percent() {
        let stats = SearchStats::default();
        assert_eq!(stats.accessed_percent(), 0.0);
        assert_eq!(stats.result_percent(), 0.0);
        assert_eq!(stats.final_stage_evaluated(), 0);
    }

    #[test]
    fn accumulate_and_average() {
        let mut total = SearchStats::default();
        for refined in [10, 20] {
            total.accumulate(&SearchStats {
                dataset_size: 100,
                refined,
                results: 5,
                filter_time: Duration::from_millis(2),
                refine_time: Duration::from_millis(8),
                ..Default::default()
            });
        }
        assert_eq!(total.refined, 30);
        assert_eq!(total.dataset_size, 100);
        let averaged = total.averaged(2);
        assert!((averaged.avg_refined - 15.0).abs() < 1e-12);
        assert!((averaged.avg_accessed_percent - 15.0).abs() < 1e-12);
        assert_eq!(averaged.avg_total_time(), Duration::from_millis(10));
    }

    #[test]
    fn accumulate_merges_stages() {
        let per_query = |evaluated, pruned| SearchStats {
            dataset_size: 50,
            stages: vec![
                StageStats {
                    name: "size",
                    evaluated,
                    pruned,
                    time: Duration::from_micros(3),
                },
                StageStats {
                    name: "propt",
                    evaluated: evaluated - pruned,
                    pruned: 1,
                    time: Duration::from_micros(9),
                },
            ],
            ..Default::default()
        };
        let mut total = SearchStats::default();
        total.accumulate(&per_query(50, 30));
        total.accumulate(&per_query(50, 10));
        assert_eq!(total.stages[0].evaluated, 100);
        assert_eq!(total.stages[0].pruned, 40);
        assert_eq!(total.stages[1].evaluated, 60);
        assert_eq!(total.final_stage_evaluated(), 60);
        assert_eq!(total.stages[0].survivors(), 60);
        let averaged = total.averaged(2);
        assert_eq!(averaged.avg_stages.len(), 2);
        assert!((averaged.avg_stages[0].avg_evaluated - 50.0).abs() < 1e-12);
        assert!((averaged.avg_stages[1].avg_pruned - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_cutoff_fields_and_display_reports_them() {
        let mut total = SearchStats::default();
        for (cutoffs, bands) in [(3usize, 40u64), (2, 17)] {
            total.accumulate(&SearchStats {
                dataset_size: 100,
                refined: 10,
                refine_cutoffs: cutoffs,
                refine_bands_skipped: bands,
                ..Default::default()
            });
        }
        assert_eq!(total.refine_cutoffs, 5);
        assert_eq!(total.refine_bands_skipped, 57);
        let rendered = format!("{total}");
        assert!(
            rendered.contains("5 refinements cut off") && rendered.contains("57 cells skipped"),
            "missing cutoff clause in: {rendered}"
        );
        // The clause is omitted entirely when no refinement was cut off.
        let quiet = format!("{}", SearchStats::default());
        assert!(!quiet.contains("cut off"));
    }

    #[test]
    #[should_panic(expected = "different datasets")]
    fn accumulate_rejects_mixed_datasets() {
        let mut total = SearchStats {
            dataset_size: 10,
            ..Default::default()
        };
        total.accumulate(&SearchStats {
            dataset_size: 20,
            ..Default::default()
        });
    }

    #[test]
    fn display_renders_summary_and_funnel() {
        let stats = SearchStats {
            dataset_size: 200,
            refined: 10,
            refine_cutoffs: 0,
            refine_bands_skipped: 0,
            results: 5,
            filter_time: Duration::from_micros(120),
            refine_time: Duration::from_micros(480),
            stages: vec![
                StageStats {
                    name: "size",
                    evaluated: 200,
                    pruned: 150,
                    time: Duration::from_micros(20),
                },
                StageStats {
                    name: "propt",
                    evaluated: 50,
                    pruned: 40,
                    time: Duration::from_micros(100),
                },
            ],
            threads: 1,
            latency: LatencyBuckets::default(),
        };
        let rendered = format!("{stats}");
        assert!(rendered.starts_with("-- 5 results; accessed 10/200 trees (5.00%)"));
        assert!(rendered.contains("stage   size: evaluated    200, pruned    150"));
        assert!(rendered.contains("stage  propt: evaluated     50, pruned     40"));
        assert!(!rendered.ends_with('\n'));

        // Single-stage engines render just the summary line.
        let mut flat = stats.clone();
        flat.stages.truncate(1);
        assert!(!format!("{flat}").contains("stage"));

        let averaged = stats.averaged(2);
        let rendered = format!("{averaged}");
        assert!(rendered.starts_with("-- 2 queries over 200 trees"));
        assert!(rendered.contains("avg evaluated    100.00"));
        assert!(rendered.contains("avg pruned     20.00"));
    }

    #[test]
    fn record_metrics_accumulates_funnel_counters() {
        let stats = SearchStats {
            dataset_size: 100,
            refined: 7,
            results: 3,
            stages: vec![
                StageStats {
                    name: "size",
                    evaluated: 100,
                    pruned: 80,
                    time: Duration::from_micros(5),
                },
                StageStats {
                    name: "propt",
                    evaluated: 20,
                    pruned: 13,
                    time: Duration::from_micros(15),
                },
            ],
            ..Default::default()
        };
        let before = treesim_obs::metrics::snapshot();
        stats.record_metrics("test.stats");
        let after = treesim_obs::metrics::snapshot();
        assert_eq!(after.counter_delta(&before, "test.stats.queries"), 1);
        assert_eq!(after.counter_delta(&before, "test.stats.refined"), 7);
        assert_eq!(after.counter_delta(&before, "test.stats.results"), 3);
        // The shared cascade funnel counters may also be bumped by engine
        // tests running in parallel, so deltas are lower bounds here.
        assert!(after.counter_delta(&before, "cascade.size.evaluated") >= 100);
        assert!(after.counter_delta(&before, "cascade.propt.pruned") >= 13);
        assert!(after
            .histogram("test.stats.filter.us")
            .is_some_and(|h| h.count >= 1));
    }

    #[test]
    fn accumulate_builds_latency_distribution() {
        let mut total = SearchStats::default();
        assert!(total.latency.is_empty());
        // 9 fast queries (~100µs) and one slow outlier (~100ms).
        for _ in 0..9 {
            total.accumulate(&SearchStats {
                dataset_size: 50,
                filter_time: Duration::from_micros(40),
                refine_time: Duration::from_micros(60),
                ..Default::default()
            });
        }
        total.accumulate(&SearchStats {
            dataset_size: 50,
            refine_time: Duration::from_millis(100),
            ..Default::default()
        });
        assert_eq!(total.latency.count(), 10);
        assert_eq!(total.latency.max_us(), 100_000);
        // p50/p90 land in the fast bucket (log₂ upper edge ≥ the 100µs
        // sample), p99 is the outlier clamped to the observed max.
        assert!(total.latency.p50_us() >= 100 && total.latency.p50_us() < 100_000);
        assert_eq!(total.latency.p90_us(), total.latency.p50_us());
        assert_eq!(total.latency.p99_us(), 100_000);

        // Merging two accumulators combines distributions.
        let mut grand = SearchStats::default();
        grand.accumulate(&total);
        grand.accumulate(&total);
        assert_eq!(grand.latency.count(), 20);
        assert_eq!(grand.latency.p99_us(), 100_000);

        // The averaged view carries the distribution and renders it.
        let averaged = total.averaged(10);
        let rendered = format!("{averaged}");
        assert!(rendered.contains("latency p50"), "{rendered}");
        assert!(rendered.contains("p99 100000µs"), "{rendered}");

        // Per-query stats (empty buckets) never render a latency clause.
        assert!(!format!("{}", SearchStats::default()).contains("latency"));
        let rendered = format!("{total}");
        assert!(rendered.contains("latency p50"), "{rendered}");
    }

    #[test]
    fn latency_quantiles_edge_cases() {
        let empty = LatencyBuckets::default();
        assert_eq!(empty.quantile_us(0.5), 0);
        assert_eq!(empty.count(), 0);
        let mut one = LatencyBuckets::default();
        one.record_micros(250);
        assert_eq!(one.p50_us(), 250);
        assert_eq!(one.p99_us(), 250);
        assert_eq!(one.quantile_us(0.0), 250); // rank clamps to 1
        assert_eq!(one.quantile_us(1.0), 250);
    }

    #[test]
    fn accumulate_tracks_thread_pool_size() {
        let mut total = SearchStats::default();
        assert_eq!(total.threads, 1);
        total.accumulate(&SearchStats {
            dataset_size: 5,
            threads: 4,
            ..Default::default()
        });
        assert_eq!(total.threads, 4);
    }
}
