//! Per-query statistics — the quantities reported in the paper's figures,
//! plus per-stage observability for the staged bound cascade.

use std::time::Duration;

/// Measurements for one stage of the lower-bound cascade.
///
/// A cascade evaluates bounds coarsest-first; a candidate only reaches
/// stage `s + 1` if stage `s` could not prune it, so `evaluated` is
/// non-increasing across stages and `evaluated − pruned` of the final
/// stage is the refinement candidate set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Stage name ("size", "bdist", "propt", …).
    pub name: &'static str,
    /// Candidates whose bound was computed at this stage.
    pub evaluated: usize,
    /// Candidates this stage eliminated (never saw later stages).
    pub pruned: usize,
    /// Wall-clock time spent computing this stage's bounds.
    pub time: Duration,
}

impl StageStats {
    /// A fresh accumulator for the named stage.
    pub fn named(name: &'static str) -> Self {
        StageStats {
            name,
            ..Default::default()
        }
    }

    /// Candidates that survived this stage.
    pub fn survivors(&self) -> usize {
        self.evaluated.saturating_sub(self.pruned)
    }
}

/// Measurements collected while answering one similarity query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of trees in the dataset.
    pub dataset_size: usize,
    /// Trees whose real edit distance was computed (true + false positives —
    /// the "% of accessed data" numerator of Figures 7–14).
    pub refined: usize,
    /// Trees in the final result set (true positives).
    pub results: usize,
    /// Time spent computing lower bounds (all cascade stages).
    pub filter_time: Duration,
    /// Time spent computing real edit distances.
    pub refine_time: Duration,
    /// Per-stage cascade breakdown, coarsest stage first. Empty for
    /// engines that do not run a cascade.
    pub stages: Vec<StageStats>,
    /// Worker threads that produced these numbers (1 for a single query;
    /// the batch APIs record the pool size).
    pub threads: usize,
}

impl Default for SearchStats {
    fn default() -> Self {
        SearchStats {
            dataset_size: 0,
            refined: 0,
            results: 0,
            filter_time: Duration::ZERO,
            refine_time: Duration::ZERO,
            stages: Vec::new(),
            threads: 1,
        }
    }
}

impl SearchStats {
    /// The paper's headline metric:
    /// `(|TruePositive| + |FalsePositive|) / |Dataset| × 100 %`.
    pub fn accessed_percent(&self) -> f64 {
        if self.dataset_size == 0 {
            return 0.0;
        }
        self.refined as f64 / self.dataset_size as f64 * 100.0
    }

    /// Fraction of the result set within the accessed data (selectivity).
    pub fn result_percent(&self) -> f64 {
        if self.dataset_size == 0 {
            return 0.0;
        }
        self.results as f64 / self.dataset_size as f64 * 100.0
    }

    /// Total query time.
    pub fn total_time(&self) -> Duration {
        self.filter_time + self.refine_time
    }

    /// Bounds computed at the final (most expensive) cascade stage — for
    /// the positional filter, the number of `propt` binary searches.
    pub fn final_stage_evaluated(&self) -> usize {
        self.stages.last().map_or(0, |s| s.evaluated)
    }

    /// Accumulates another query's stats (for workload averages).
    ///
    /// Accumulation only makes sense across queries against the **same
    /// dataset**: `accessed_percent`/`result_percent` divide by one shared
    /// `dataset_size`.
    ///
    /// # Panics
    ///
    /// Panics if both sides carry a non-zero `dataset_size` and they
    /// disagree (mixing stats from different datasets). A zero
    /// `dataset_size` means "not yet attributed" (the `Default`
    /// accumulator) and adopts the other side's size.
    pub fn accumulate(&mut self, other: &SearchStats) {
        if self.dataset_size == 0 {
            self.dataset_size = other.dataset_size;
        } else if other.dataset_size != 0 {
            assert_eq!(
                self.dataset_size, other.dataset_size,
                "accumulating stats from different datasets"
            );
        }
        self.refined += other.refined;
        self.results += other.results;
        self.filter_time += other.filter_time;
        self.refine_time += other.refine_time;
        self.threads = self.threads.max(other.threads);
        if self.stages.is_empty() {
            self.stages = other.stages.clone();
        } else if !other.stages.is_empty() {
            assert_eq!(
                self.stages.len(),
                other.stages.len(),
                "accumulating stats from different cascades"
            );
            for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
                debug_assert_eq!(mine.name, theirs.name, "cascade stage order changed");
                mine.evaluated += theirs.evaluated;
                mine.pruned += theirs.pruned;
                mine.time += theirs.time;
            }
        }
    }

    /// Divides accumulated counters by the number of queries.
    pub fn averaged(&self, queries: usize) -> AveragedStats {
        let q = queries.max(1) as f64;
        AveragedStats {
            queries,
            dataset_size: self.dataset_size,
            avg_refined: self.refined as f64 / q,
            avg_results: self.results as f64 / q,
            avg_accessed_percent: self.accessed_percent() / q,
            avg_result_percent: self.result_percent() / q,
            avg_filter_time: self.filter_time.div_f64(q),
            avg_refine_time: self.refine_time.div_f64(q),
            avg_stages: self
                .stages
                .iter()
                .map(|s| AveragedStage {
                    name: s.name,
                    avg_evaluated: s.evaluated as f64 / q,
                    avg_pruned: s.pruned as f64 / q,
                    avg_time: s.time.div_f64(q),
                })
                .collect(),
        }
    }
}

/// One cascade stage averaged over a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedStage {
    /// Stage name.
    pub name: &'static str,
    /// Mean bounds computed per query at this stage.
    pub avg_evaluated: f64,
    /// Mean candidates pruned per query at this stage.
    pub avg_pruned: f64,
    /// Mean wall-clock per query at this stage.
    pub avg_time: Duration,
}

/// Workload-averaged statistics (the paper averages over 100 queries).
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedStats {
    /// Number of queries averaged over.
    pub queries: usize,
    /// Dataset size.
    pub dataset_size: usize,
    /// Mean number of refined (accessed) trees per query.
    pub avg_refined: f64,
    /// Mean result-set size per query.
    pub avg_results: f64,
    /// Mean accessed-data percentage per query.
    pub avg_accessed_percent: f64,
    /// Mean result percentage per query.
    pub avg_result_percent: f64,
    /// Mean filtering time per query.
    pub avg_filter_time: Duration,
    /// Mean refinement time per query.
    pub avg_refine_time: Duration,
    /// Mean per-stage cascade breakdown.
    pub avg_stages: Vec<AveragedStage>,
}

impl AveragedStats {
    /// Mean total time per query.
    pub fn avg_total_time(&self) -> Duration {
        self.avg_filter_time + self.avg_refine_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessed_percent_basic() {
        let stats = SearchStats {
            dataset_size: 200,
            refined: 10,
            results: 5,
            ..Default::default()
        };
        assert!((stats.accessed_percent() - 5.0).abs() < 1e-12);
        assert!((stats.result_percent() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_is_zero_percent() {
        let stats = SearchStats::default();
        assert_eq!(stats.accessed_percent(), 0.0);
        assert_eq!(stats.result_percent(), 0.0);
        assert_eq!(stats.final_stage_evaluated(), 0);
    }

    #[test]
    fn accumulate_and_average() {
        let mut total = SearchStats::default();
        for refined in [10, 20] {
            total.accumulate(&SearchStats {
                dataset_size: 100,
                refined,
                results: 5,
                filter_time: Duration::from_millis(2),
                refine_time: Duration::from_millis(8),
                ..Default::default()
            });
        }
        assert_eq!(total.refined, 30);
        assert_eq!(total.dataset_size, 100);
        let averaged = total.averaged(2);
        assert!((averaged.avg_refined - 15.0).abs() < 1e-12);
        assert!((averaged.avg_accessed_percent - 15.0).abs() < 1e-12);
        assert_eq!(averaged.avg_total_time(), Duration::from_millis(10));
    }

    #[test]
    fn accumulate_merges_stages() {
        let per_query = |evaluated, pruned| SearchStats {
            dataset_size: 50,
            stages: vec![
                StageStats {
                    name: "size",
                    evaluated,
                    pruned,
                    time: Duration::from_micros(3),
                },
                StageStats {
                    name: "propt",
                    evaluated: evaluated - pruned,
                    pruned: 1,
                    time: Duration::from_micros(9),
                },
            ],
            ..Default::default()
        };
        let mut total = SearchStats::default();
        total.accumulate(&per_query(50, 30));
        total.accumulate(&per_query(50, 10));
        assert_eq!(total.stages[0].evaluated, 100);
        assert_eq!(total.stages[0].pruned, 40);
        assert_eq!(total.stages[1].evaluated, 60);
        assert_eq!(total.final_stage_evaluated(), 60);
        assert_eq!(total.stages[0].survivors(), 60);
        let averaged = total.averaged(2);
        assert_eq!(averaged.avg_stages.len(), 2);
        assert!((averaged.avg_stages[0].avg_evaluated - 50.0).abs() < 1e-12);
        assert!((averaged.avg_stages[1].avg_pruned - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different datasets")]
    fn accumulate_rejects_mixed_datasets() {
        let mut total = SearchStats {
            dataset_size: 10,
            ..Default::default()
        };
        total.accumulate(&SearchStats {
            dataset_size: 20,
            ..Default::default()
        });
    }

    #[test]
    fn accumulate_tracks_thread_pool_size() {
        let mut total = SearchStats::default();
        assert_eq!(total.threads, 1);
        total.accumulate(&SearchStats {
            dataset_size: 5,
            threads: 4,
            ..Default::default()
        });
        assert_eq!(total.threads, 4);
    }
}
