//! Approximate tree pattern matching: find the subtrees of a large
//! document within edit distance τ of a pattern — the paper's "XML data
//! searching under the presence of spelling errors" scenario, applied
//! inside one document instead of across a dataset.
//!
//! Every document node anchors a candidate subtree; the size bound and the
//! positional binary branch bound prune candidates before any Zhang–Shasha
//! refinement.

use treesim_core::{BranchVocab, PositionalVector};
use treesim_edit::{zhang_shasha, TreeInfo, UnitCost, ZsWorkspace};
use treesim_tree::{NodeId, Tree};

/// One pattern match: a document node whose subtree is within τ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtreeMatch {
    /// Root of the matching subtree in the document.
    pub node: NodeId,
    /// Exact edit distance between that subtree and the pattern.
    pub distance: u64,
}

/// Filtering counters for a subtree search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubtreeStats {
    /// Document nodes passing the size pre-filter.
    pub candidates: usize,
    /// Candidates surviving the branch filter (refined exactly).
    pub refined: usize,
    /// Matches returned.
    pub matches: usize,
}

/// Finds all document subtrees within edit distance `tau` of `pattern`,
/// in preorder of their roots. Matches may nest (an ancestor and its
/// descendant can both match).
///
/// # Examples
///
/// ```
/// use treesim_search::subtree_search;
/// use treesim_tree::{parse::bracket, LabelInterner};
///
/// let mut interner = LabelInterner::new();
/// let document = bracket::parse(&mut interner, "root(sec(p(x y)) sec(p(x z)))").unwrap();
/// let pattern = bracket::parse(&mut interner, "p(x y)").unwrap();
/// let (matches, _) = subtree_search(&document, &pattern, 1, 2);
/// // The exact hit, the 1-edit variant p(x z), and sec(p(x y)) — whose
/// // root deletion also costs exactly one operation.
/// assert_eq!(matches.len(), 3);
/// ```
pub fn subtree_search(
    document: &Tree,
    pattern: &Tree,
    tau: u32,
    q: usize,
) -> (Vec<SubtreeMatch>, SubtreeStats) {
    let mut stats = SubtreeStats::default();
    let mut vocab = BranchVocab::new(q);
    let pattern_vector = PositionalVector::build(pattern, &mut vocab);
    let pattern_info = TreeInfo::new(pattern);
    let pattern_size = pattern.len() as i64;
    let mut workspace = ZsWorkspace::new();

    // Subtree sizes in one bottom-up pass.
    let mut sizes = vec![0i64; document.arena_len()];
    for node in document.postorder() {
        sizes[node.index()] = 1 + document
            .children(node)
            .map(|c| sizes[c.index()])
            .sum::<i64>();
    }

    let mut matches = Vec::new();
    for node in document.preorder() {
        if (sizes[node.index()] - pattern_size).unsigned_abs() > u64::from(tau) {
            continue;
        }
        stats.candidates += 1;
        let subtree = document.subtree_to_tree(node);
        let subtree_vector = PositionalVector::build(&subtree, &mut vocab);
        if pattern_vector.exceeds_range(&subtree_vector, tau) {
            continue;
        }
        stats.refined += 1;
        let distance = zhang_shasha(
            &pattern_info,
            &TreeInfo::new(&subtree),
            &UnitCost,
            &mut workspace,
        );
        if distance <= u64::from(tau) {
            stats.matches += 1;
            matches.push(SubtreeMatch { node, distance });
        }
    }
    (matches, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesim_edit::edit_distance;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn setup(doc: &str, pattern: &str) -> (Tree, Tree, LabelInterner) {
        let mut interner = LabelInterner::new();
        let document = bracket::parse(&mut interner, doc).unwrap();
        let pattern = bracket::parse(&mut interner, pattern).unwrap();
        (document, pattern, interner)
    }

    fn brute_force(document: &Tree, pattern: &Tree, tau: u32) -> Vec<(NodeId, u64)> {
        document
            .preorder()
            .filter_map(|node| {
                let subtree = document.subtree_to_tree(node);
                let distance = edit_distance(pattern, &subtree);
                (distance <= u64::from(tau)).then_some((node, distance))
            })
            .collect()
    }

    #[test]
    fn exact_occurrences_found() {
        let (document, pattern, _) = setup("root(sec(p(x y)) sec(p(x y) p(x z)) p(x y))", "p(x y)");
        let (matches, stats) = subtree_search(&document, &pattern, 0, 2);
        assert_eq!(matches.len(), 3);
        assert!(matches.iter().all(|m| m.distance == 0));
        assert_eq!(stats.matches, 3);
        assert!(stats.refined >= 3);
    }

    #[test]
    fn approximate_matches_against_brute_force() {
        let (document, pattern, _) = setup(
            "root(a(b c d) a(b c) x(y(b c d) a(b d)) a(b c d e))",
            "a(b c d)",
        );
        for tau in 0..=3u32 {
            let (matches, _) = subtree_search(&document, &pattern, tau, 2);
            let expected = brute_force(&document, &pattern, tau);
            let got: Vec<(NodeId, u64)> = matches.iter().map(|m| (m.node, m.distance)).collect();
            assert_eq!(got, expected, "τ={tau}");
        }
    }

    #[test]
    fn filter_prunes_most_candidates() {
        // A long document with one near-match.
        let mut doc = String::from("root(");
        for i in 0..40 {
            doc.push_str(&format!("s{i}(q r) "));
        }
        doc.push_str("target(b c d))");
        let (document, pattern, _) = setup(&doc, "target(b c)");
        let (matches, stats) = subtree_search(&document, &pattern, 1, 2);
        assert_eq!(matches.len(), 1);
        assert!(
            stats.refined < stats.candidates,
            "branch filter refined everything: {stats:?}"
        );
    }

    #[test]
    fn nested_matches_are_all_reported() {
        let (document, pattern, _) = setup("a(a(a))", "a(a)");
        let (matches, _) = subtree_search(&document, &pattern, 1, 2);
        // a(a(a)) at τ=1, a(a) exact, a at τ=1.
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn no_matches_when_tau_too_small() {
        let (document, pattern, _) = setup("x(y z)", "completely(different shape here)");
        let (matches, stats) = subtree_search(&document, &pattern, 1, 2);
        assert!(matches.is_empty());
        assert_eq!(stats.matches, 0);
    }
}
