//! The dynamic index's segment-wise arena growth round-trips: after any
//! sequence of pushes, its CSR arena is exactly the arena a from-scratch
//! [`treesim_core::InvertedFileIndex`] build would produce (the static
//! construction path), and each segment reads back the pushed vector.

use proptest::prelude::*;
use treesim_core::{InvertedFileIndex, VectorArena};
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_search::DynamicIndex;

#[test]
fn pushed_arena_equals_static_build() {
    let mut index = DynamicIndex::new(2);
    for spec in [
        "a(b(c(d)) b e)",
        "a(c(d) b e)",
        "a(b c)",
        "x(y z)",
        "a(b(c d e) f)",
        "q(r(s))",
    ] {
        index.push_bracket(spec).unwrap();
        // After EVERY push, the incrementally grown arena matches the
        // from-scratch CSR build over the same forest.
        let rebuilt = VectorArena::from_index(&InvertedFileIndex::build(index.forest(), 2));
        assert_eq!(index.arena(), &rebuilt);
    }
    assert_eq!(index.arena().len(), index.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Same round-trip over synthetic forests bulk-loaded tree by tree.
    #[test]
    fn pushed_arena_equals_static_build_on_synthetic_forests(
        seed in 0u64..100_000,
        count in 1usize..8,
    ) {
        let forest = generate(&SyntheticConfig {
            fanout: Normal::new(2.5, 1.0),
            size: Normal::new(9.0, 3.0),
            label_count: 5,
            decay: 0.25,
            seed_count: 2.min(count),
            tree_count: count,
            rng_seed: seed,
        });
        let index = DynamicIndex::from_forest(forest, 2);
        let rebuilt = VectorArena::from_index(&InvertedFileIndex::build(index.forest(), 2));
        prop_assert_eq!(index.arena(), &rebuilt);
        prop_assert_eq!(index.arena().len(), index.len());
        prop_assert_eq!(index.arena().q(), 2);
    }
}
