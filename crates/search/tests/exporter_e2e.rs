//! End-to-end exporter test: a live `/metrics` endpoint scraped during
//! real multi-threaded batch traffic must serve parseable Prometheus
//! text exposition (format 0.0.4) carrying the cascade, refinement and
//! recorder metric families.
//!
//! This file deliberately holds a SINGLE test: cargo runs each
//! integration test file in its own process, so the global registry,
//! recorder and the spawned server are exclusively ours.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use treesim_obs::server::MetricsServer;
use treesim_search::{BiBranchFilter, BiBranchMode, SearchEngine};
use treesim_tree::{Forest, Tree, TreeId};

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("http header split");
    (head.to_owned(), body.to_owned())
}

/// Validates one exposition document line by line against the 0.0.4
/// grammar: comment lines start with `#`; sample lines are
/// `name[{labels}] value` with a metric-name production of
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn assert_parses_as_exposition(body: &str) {
    assert!(!body.is_empty(), "exposition body must not be empty");
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without value: {line:?}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in {line:?}"
        );
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => (name, Some(rest)),
            None => (series, None),
        };
        let mut chars = name.chars();
        assert!(
            matches!(chars.next(), Some('a'..='z' | 'A'..='Z' | '_' | ':')),
            "bad metric-name start in {line:?}"
        );
        assert!(
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric-name character in {line:?}"
        );
        if let Some(labels) = labels {
            let labels = labels
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label set in {line:?}"));
            for pair in labels.split(',') {
                let (key, val) = pair
                    .split_once('=')
                    .unwrap_or_else(|| panic!("label without `=` in {line:?}"));
                assert!(
                    !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                );
                assert!(
                    val.starts_with('"') && val.ends_with('"') && val.len() >= 2,
                    "unquoted label value in {line:?}"
                );
            }
        }
    }
}

#[test]
fn metrics_endpoint_serves_valid_exposition_during_batch_traffic() {
    let mut forest = Forest::new();
    for i in 0..40 {
        forest
            .parse_bracket(&format!("a(b{} c(d{}) e)", i % 4, i % 3))
            .unwrap();
    }

    let handle = MetricsServer::bind("127.0.0.1:0")
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server thread");
    let addr = handle.addr();

    // Drive batch traffic on a worker thread while this thread scrapes.
    let worker = std::thread::spawn({
        let forest = forest.clone();
        move || {
            let engine = SearchEngine::new(
                &forest,
                BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            );
            for round in 0..6 {
                let queries: Vec<&Tree> = (0..20)
                    .map(|i| forest.tree(TreeId(((i + round) % forest.len()) as u32)))
                    .collect();
                engine.knn_batch_threads(&queries, 3, 4);
            }
        }
    });

    // Scrapes racing the traffic must already be well-formed.
    for _ in 0..3 {
        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("version=0.0.4"), "{head}");
        assert_parses_as_exposition(&body);
    }
    worker.join().expect("traffic thread");

    // The settled scrape carries every advertised family, including the
    // SLO gauges and the windowed quantile series the scrape itself
    // evaluates: the batch traffic above all lands in the live partial
    // interval, so the 5 m window's engine.knn p99 is already non-empty.
    let (_, body) = http_get(addr, "/metrics");
    assert_parses_as_exposition(&body);
    for family in [
        "cascade_",
        "refine_",
        "recorder_",
        "engine_knn_",
        "slo_burn_rate_engine_knn",
        "slo_budget_remaining_engine_knn",
    ] {
        assert!(
            body.lines().any(|l| l.starts_with(family)),
            "missing {family}* family in exposition:\n{body}"
        );
    }
    let windowed_p99 = body
        .lines()
        .find(|l| l.starts_with("window_engine_knn_us_p99{window=\"300s\"}"))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .expect("windowed engine.knn p99 series");
    assert!(windowed_p99 > 0, "p99 over live batch traffic");
    // Spot-check the funnel made it through with real traffic behind it.
    let propt_evaluated = body
        .lines()
        .find(|l| l.starts_with("cascade_propt_evaluated "))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .expect("cascade_propt_evaluated sample");
    assert!(propt_evaluated > 0);

    // The recorder endpoint serves the same traffic as structured JSON.
    let (head, body) = http_get(addr, "/recorder.json");
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    let doc = treesim_obs::parse_json(&body).expect("recorder.json parses");
    assert_eq!(
        doc.get("schema").and_then(treesim_obs::Json::as_str),
        Some("treesim-recorder/v1")
    );
    let records = doc
        .get("records")
        .and_then(treesim_obs::Json::as_array)
        .expect("records array");
    assert!(records.len() >= 120, "all batch queries were recorded");
    assert!(records.iter().all(|r| {
        r.get("kind").and_then(treesim_obs::Json::as_str) == Some("knn") && r.get("batch").is_some()
    }));

    // The `?since=` cursor resumes from a sequence id: re-fetching past
    // the max id we just saw returns only records newer than it (none,
    // since the traffic stopped before the first fetch).
    let max_id = records
        .iter()
        .filter_map(|r| r.get("id").and_then(treesim_obs::Json::as_u64))
        .max()
        .expect("records carry sequence ids");
    let (head, body) = http_get(addr, &format!("/recorder.json?since={max_id}"));
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    let doc = treesim_obs::parse_json(&body).expect("cursored recorder.json parses");
    assert_eq!(
        doc.get("since").and_then(treesim_obs::Json::as_u64),
        Some(max_id)
    );
    let tail = doc
        .get("records")
        .and_then(treesim_obs::Json::as_array)
        .expect("records array");
    assert!(
        tail.iter()
            .filter_map(|r| r.get("id").and_then(treesim_obs::Json::as_u64))
            .all(|id| id > max_id),
        "cursor must only return newer records"
    );
    // A mid-stream cursor returns a strict suffix of the full fetch.
    let (_, body) = http_get(addr, &format!("/recorder.json?since={}", max_id / 2));
    let doc = treesim_obs::parse_json(&body).expect("suffix recorder.json parses");
    let suffix = doc
        .get("records")
        .and_then(treesim_obs::Json::as_array)
        .expect("records array");
    assert!(!suffix.is_empty() && suffix.len() < records.len());

    // /slo.json shares the evaluation the scrape published: schema'd,
    // with the engine.knn latency target carrying the windowed p99.
    let (head, body) = http_get(addr, "/slo.json");
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    let doc = treesim_obs::parse_json(&body).expect("slo.json parses");
    assert_eq!(
        doc.get("schema").and_then(treesim_obs::Json::as_str),
        Some(treesim_obs::slo::SCHEMA)
    );
    let targets = doc
        .get("targets")
        .and_then(treesim_obs::Json::as_array)
        .expect("targets array");
    let knn = targets
        .iter()
        .find(|t| {
            t.get("op").and_then(treesim_obs::Json::as_str) == Some("engine.knn")
                && t.get("kind").and_then(treesim_obs::Json::as_str) == Some("latency_p99")
        })
        .expect("engine.knn latency target");
    let observed = knn
        .get("observed_us")
        .and_then(treesim_obs::Json::as_u64)
        .expect("windowed p99 observed during live traffic");
    assert!(observed > 0);

    handle.shutdown();
}
