//! Runtime half of the metric-name contract.
//!
//! The `xtask analyze` metric-name lint checks name *literals* statically;
//! this test closes the loop at runtime: it drives every metric-emitting
//! engine path (static engine, batch, dynamic index, all filters), drains
//! the global registry, and validates each name that actually materialized
//! against the **same** grammar (`treesim_obs::naming`) the lint uses.
//! A `format!`-built name the lint could only check as a template is fully
//! expanded here.
//!
//! This is an integration test on purpose: it runs in its own process, so
//! the registry contains exactly what this binary emitted.

use treesim_obs::naming::{is_test_name, validate_metric_name, CASCADE_STAGES, KNOWN_PREFIXES};
use treesim_search::{
    BiBranchFilter, BiBranchMode, DynamicIndex, Filter, HistogramFilter, NoFilter, PostingsFilter,
    SearchEngine, ShardedEngine, ShardedForest,
};
use treesim_tree::Forest;

fn sample_forest() -> Forest {
    let mut forest = Forest::new();
    for spec in [
        "a(b(c(d)) b e)",
        "a(c(d) b e)",
        "a(b(c d) b e)",
        "x(y z)",
        "a(b e)",
        "x(y(z) z)",
    ] {
        forest.parse_bracket(spec).expect("valid bracket spec");
    }
    forest
}

/// Runs knn, range and batch queries through `filter`'s cascade.
fn drive_engine<F: Filter + Sync>(forest: &Forest, filter: F) {
    let engine = SearchEngine::new(forest, filter);
    let query = forest.tree(treesim_tree::TreeId(0));
    let (knn, knn_stats) = engine.knn(query, 3);
    assert!(!knn.is_empty());
    knn_stats.record_metrics("engine.knn");
    let (range, range_stats) = engine.range(query, 2);
    assert!(!range.is_empty());
    range_stats.record_metrics("engine.range");
    let batch = engine.knn_batch(&[query, forest.tree(treesim_tree::TreeId(3))], 2);
    assert_eq!(batch.len(), 2);
}

#[test]
fn every_emitted_metric_name_parses_under_the_grammar() {
    let forest = sample_forest();
    drive_engine(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    drive_engine(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Plain),
    );
    drive_engine(&forest, HistogramFilter::build(&forest));
    drive_engine(&forest, NoFilter::build(&forest));
    drive_engine(&forest, PostingsFilter::build(&forest, 2));
    drive_engine(&forest, PostingsFilter::with_histogram(&forest, 2));

    // Sharded execution materializes the `shard.*` namespace.
    let sharded = ShardedForest::split(&forest, 3);
    let engine = ShardedEngine::new(&sharded, |shard| PostingsFilter::build(shard, 2));
    let query = forest.tree(treesim_tree::TreeId(0));
    let (hits, stats) = engine.knn(query, 3);
    assert!(!hits.is_empty());
    stats.record_metrics("shard.knn");
    let (hits, stats) = engine.range(query, 2);
    assert!(!hits.is_empty());
    stats.record_metrics("shard.range");
    let report = engine.explain_knn(query, 2);
    report
        .check_consistency()
        .expect("sharded explain telescopes");

    let mut index = DynamicIndex::new(2);
    for spec in ["a(b c)", "a(b(c) c)", "a(c)"] {
        index.push_bracket(spec).expect("valid bracket spec");
    }
    let (_, stats) = index.knn(forest.tree(treesim_tree::TreeId(0)), 2);
    stats.record_metrics("dynamic.knn");
    let (_, stats) = index.range(forest.tree(treesim_tree::TreeId(0)), 3);
    stats.record_metrics("dynamic.range");

    // The SLO engine's published series: the full `<op>.errors` catalog
    // plus the `slo.*` gauges minted by an evaluation over the traffic
    // above — every format!-built name expands and validates here.
    treesim_search::ops::register();
    assert!(treesim_search::ops::record_error("engine.knn"));
    let report = treesim_obs::slo::evaluate();
    assert!(!report.verdicts.is_empty());

    let snapshot = treesim_obs::metrics::snapshot();
    let names: Vec<&str> = snapshot
        .counters
        .iter()
        .map(|c| c.name.as_str())
        .chain(snapshot.gauges.iter().map(|g| g.name.as_str()))
        .chain(snapshot.histograms.iter().map(|h| h.name.as_str()))
        .collect();
    // The drivers above must have populated the registry; an empty
    // snapshot would vacuously "pass".
    assert!(
        names.len() >= 10,
        "expected a populated registry, got {names:?}"
    );
    // The arena-backed batched sweeps ran above, so their mechanism
    // counter and the CSR footprint gauges must have materialized (and
    // validate below like every other name).
    for expected in ["cascade.batch.evaluated", "arena.trees", "arena.entries"] {
        assert!(
            names.contains(&expected),
            "expected {expected:?} in the drained registry, got {names:?}"
        );
    }
    for name in names {
        if is_test_name(name) {
            continue; // reserved namespace for test-only metrics
        }
        if let Err(violation) = validate_metric_name(name, false) {
            panic!(
                "metric {name:?} escaped the naming contract: {violation} \
                 (grammar: treesim_obs::naming; static half: xtask analyze)"
            );
        }
    }
}

#[test]
fn filter_stage_names_match_the_contract_table() {
    let forest = sample_forest();
    let positional = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
    let plain = BiBranchFilter::build(&forest, 2, BiBranchMode::Plain);
    let histogram = HistogramFilter::build(&forest);
    let scan = NoFilter::build(&forest);
    let postings = PostingsFilter::build(&forest, 2);
    let postings_histo = PostingsFilter::with_histogram(&forest, 2);

    let mut seen = std::collections::BTreeSet::new();
    for filter in [
        &positional as &dyn StageNames,
        &plain,
        &histogram,
        &scan,
        &postings,
        &postings_histo,
    ] {
        for stage in 0..filter.stage_count() {
            let name = filter.stage(stage);
            assert!(
                CASCADE_STAGES.contains(&name),
                "Filter stage {name:?} is missing from naming::CASCADE_STAGES"
            );
            seen.insert(name);
        }
    }
    // …and the table lists nothing the filters no longer produce.
    for stage in CASCADE_STAGES {
        assert!(
            seen.contains(stage),
            "naming::CASCADE_STAGES lists {stage:?} but no filter returns it"
        );
    }
    // The funnel prefix itself must be a known prefix.
    assert!(KNOWN_PREFIXES.contains(&"cascade"));
}

/// Object-safe view of the stage portion of [`Filter`] (the full trait has
/// an associated `Query` type, so `&dyn Filter` is not usable directly).
trait StageNames {
    fn stage_count(&self) -> usize;
    fn stage(&self, stage: usize) -> &'static str;
}

impl<F: Filter> StageNames for F {
    fn stage_count(&self) -> usize {
        self.stages()
    }
    fn stage(&self, stage: usize) -> &'static str {
        self.stage_name(stage)
    }
}
