//! Global-metrics integration: the `treesim-obs` registry must agree with
//! the per-query [`SearchStats`] funnel.
//!
//! This file deliberately holds a SINGLE test: cargo runs each integration
//! test file in its own process, so nothing else touches the global
//! registry here, and delta assertions can be exact. (Do not add more
//! `#[test]` functions — they would run as parallel threads of this
//! process and race on the globals, and the final `metrics::reset()`
//! would corrupt their deltas.)

use treesim_obs::MetricsSnapshot;
use treesim_search::{BiBranchFilter, BiBranchMode, DynamicIndex, SearchEngine};
use treesim_tree::{Forest, Tree, TreeId};

fn histogram_count(snapshot: &MetricsSnapshot, name: &str) -> u64 {
    snapshot.histogram(name).map_or(0, |h| h.count)
}

#[test]
fn registry_matches_search_stats_exactly() {
    let mut forest = Forest::new();
    for i in 0..16 {
        forest
            .parse_bracket(&format!("a(b{} c(d{}) e)", i % 4, i % 3))
            .unwrap();
    }
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let query = forest.tree(TreeId(0));

    // --- one knn query: exact per-stage funnel deltas -------------------
    let before = treesim_obs::metrics::snapshot();
    let (_, stats) = engine.knn(query, 3);
    let after = treesim_obs::metrics::snapshot();

    assert_eq!(after.counter_delta(&before, "engine.knn.queries"), 1);
    assert_eq!(
        after.counter_delta(&before, "engine.knn.refined"),
        stats.refined as u64
    );
    assert_eq!(
        after.counter_delta(&before, "engine.knn.results"),
        stats.results as u64
    );
    for stage in &stats.stages {
        assert_eq!(
            after.counter_delta(&before, &format!("cascade.{}.evaluated", stage.name)),
            stage.evaluated as u64,
            "cascade.{}.evaluated disagrees with SearchStats",
            stage.name
        );
        assert_eq!(
            after.counter_delta(&before, &format!("cascade.{}.pruned", stage.name)),
            stage.pruned as u64,
            "cascade.{}.pruned disagrees with SearchStats",
            stage.name
        );
    }
    // One Zhang–Shasha size/latency sample per refined candidate, one
    // propt iteration sample per final-stage bound.
    assert_eq!(
        histogram_count(&after, "refine.zs.nodes") - histogram_count(&before, "refine.zs.nodes"),
        stats.refined as u64
    );
    assert_eq!(
        histogram_count(&after, "refine.zs.us") - histogram_count(&before, "refine.zs.us"),
        stats.refined as u64
    );
    assert_eq!(
        histogram_count(&after, "cascade.propt.iters")
            - histogram_count(&before, "cascade.propt.iters"),
        stats.final_stage_evaluated() as u64
    );
    assert_eq!(histogram_count(&after, "engine.knn.us"), 1);

    // --- one range query ------------------------------------------------
    let before = treesim_obs::metrics::snapshot();
    let (_, stats) = engine.range(query, 2);
    let after = treesim_obs::metrics::snapshot();
    assert_eq!(after.counter_delta(&before, "engine.range.queries"), 1);
    for stage in &stats.stages {
        assert_eq!(
            after.counter_delta(&before, &format!("cascade.{}.evaluated", stage.name)),
            stage.evaluated as u64
        );
    }

    // --- batch: totals equal the per-query sums, gauges drain to zero ---
    let queries: Vec<&Tree> = forest.iter().map(|(_, t)| t).take(6).collect();
    let before = treesim_obs::metrics::snapshot();
    let batch = engine.knn_batch_threads(&queries, 2, 3);
    let after = treesim_obs::metrics::snapshot();
    assert_eq!(
        after.counter_delta(&before, "engine.knn.queries"),
        queries.len() as u64
    );
    let refined_total: usize = batch.iter().map(|(_, s)| s.refined).sum();
    assert_eq!(
        after.counter_delta(&before, "engine.knn.refined"),
        refined_total as u64
    );
    assert_eq!(after.gauge("engine.batch.pending"), Some(0));
    assert_eq!(after.gauge("engine.batch.workers.active"), Some(0));
    assert_eq!(
        histogram_count(&after, "engine.batch.worker.us")
            - histogram_count(&before, "engine.batch.worker.us"),
        3
    );

    // --- dynamic index: push counter and size gauge ---------------------
    let mut dynamic = DynamicIndex::new(2);
    dynamic.push_bracket("a(b c)").unwrap();
    dynamic.push_bracket("a(b d)").unwrap();
    let snapshot = treesim_obs::metrics::snapshot();
    assert_eq!(snapshot.counter("dynamic.push"), Some(2));
    assert_eq!(snapshot.gauge("dynamic.trees"), Some(2));
    let probe = dynamic.forest().tree(TreeId(0));
    let before = treesim_obs::metrics::snapshot();
    let (_, dyn_stats) = dynamic.knn(probe, 1);
    dynamic.range(probe, 1);
    let after = treesim_obs::metrics::snapshot();
    assert_eq!(after.counter_delta(&before, "dynamic.knn.queries"), 1);
    assert_eq!(after.counter_delta(&before, "dynamic.range.queries"), 1);
    assert_eq!(
        after.counter_delta(&before, "dynamic.knn.refined"),
        dyn_stats.refined as u64
    );

    // --- reset wipes values but keeps registrations ---------------------
    treesim_obs::metrics::reset();
    let wiped = treesim_obs::metrics::snapshot();
    assert_eq!(wiped.counter("engine.knn.queries"), Some(0));
    assert_eq!(wiped.counter("dynamic.push"), Some(0));
    assert_eq!(wiped.gauge("dynamic.trees"), Some(0));
    assert_eq!(histogram_count(&wiped, "refine.zs.us"), 0);
}
