//! Property tests: filter-and-refine answers are exactly the sequential
//! scan's answers (completeness + correctness), for every filter.

use proptest::prelude::*;
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_edit::edit_distance;
use treesim_search::{
    BiBranchFilter, BiBranchMode, Filter, HistogramFilter, MaxFilter, NoFilter, SearchEngine,
};
use treesim_tree::{Forest, TreeId};

fn random_forest(seed: u64, count: usize) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(2.5, 1.0),
        size: Normal::new(9.0, 3.0),
        label_count: 4,
        decay: 0.3,
        seed_count: 3.min(count),
        tree_count: count,
        rng_seed: seed,
    })
}

fn check_engine<F: Filter>(forest: &Forest, filter: F, seed: u64) -> Result<(), TestCaseError> {
    let engine = SearchEngine::new(forest, filter);
    let query_id = TreeId((seed % forest.len() as u64) as u32);
    let query = forest.tree(query_id);

    // Ground truth by brute force.
    let mut truth: Vec<(u64, TreeId)> = forest
        .iter()
        .map(|(id, t)| (edit_distance(query, t), id))
        .collect();
    truth.sort_unstable();

    // k-NN distances agree for several k.
    for k in [1, 3, forest.len()] {
        let (got, stats) = engine.knn(query, k);
        let got_d: Vec<u64> = got.iter().map(|n| n.distance).collect();
        let want_d: Vec<u64> = truth.iter().take(k).map(|&(d, _)| d).collect();
        prop_assert_eq!(got_d, want_d, "knn mismatch at k={}", k);
        prop_assert!(stats.refined <= forest.len());
    }

    // Range results agree exactly for several radii.
    for tau in [0u32, 1, 2, 4, 8] {
        let (got, _) = engine.range(query, tau);
        let want: Vec<(u64, TreeId)> = truth
            .iter()
            .copied()
            .filter(|&(d, _)| d <= u64::from(tau))
            .collect();
        prop_assert_eq!(got.len(), want.len(), "range size mismatch at tau={}", tau);
        for (n, &(d, id)) in got.iter().zip(&want) {
            prop_assert_eq!(n.distance, d);
            prop_assert_eq!(n.tree, id);
        }
    }
    Ok(())
}

/// The bounded refinement's τ-cutoffs are observable and change nothing:
/// a sequential scan refines every tree, so at a small radius most
/// refinements are cut off at τ — and the results still equal brute force
/// (each surviving refinement also passes the strict-checks oracle).
#[test]
fn range_cutoffs_populate_without_changing_results() {
    let forest = random_forest(7, 40);
    let engine = SearchEngine::new(&forest, NoFilter::build(&forest));
    let query = forest.tree(TreeId(0));
    let (got, stats) = engine.range(query, 1);
    assert!(stats.refine_cutoffs > 0, "expected τ-cutoffs: {stats:?}");
    assert_eq!(stats.refined, forest.len(), "scan refines everything");
    let want: Vec<(u64, TreeId)> = {
        let mut w: Vec<(u64, TreeId)> = forest
            .iter()
            .map(|(id, t)| (edit_distance(query, t), id))
            .filter(|&(d, _)| d <= 1)
            .collect();
        w.sort_unstable();
        w
    };
    assert_eq!(got.len(), want.len());
    for (n, &(d, id)) in got.iter().zip(&want) {
        assert_eq!((n.distance, n.tree), (d, id));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bibranch_positional_engine_is_exact(seed in 0u64..10_000) {
        let forest = random_forest(seed, 12);
        check_engine(&forest, BiBranchFilter::build(&forest, 2, BiBranchMode::Positional), seed)?;
    }

    #[test]
    fn bibranch_plain_engine_is_exact(seed in 0u64..10_000) {
        let forest = random_forest(seed, 12);
        check_engine(&forest, BiBranchFilter::build(&forest, 2, BiBranchMode::Plain), seed)?;
    }

    #[test]
    fn bibranch_q3_engine_is_exact(seed in 0u64..10_000) {
        let forest = random_forest(seed, 10);
        check_engine(&forest, BiBranchFilter::build(&forest, 3, BiBranchMode::Positional), seed)?;
    }

    #[test]
    fn histogram_engine_is_exact(seed in 0u64..10_000) {
        let forest = random_forest(seed, 12);
        check_engine(&forest, HistogramFilter::build(&forest), seed)?;
    }

    #[test]
    fn stacked_filter_engine_is_exact(seed in 0u64..10_000) {
        let forest = random_forest(seed, 10);
        let filter = MaxFilter {
            first: BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            second: HistogramFilter::build(&forest),
        };
        check_engine(&forest, filter, seed)?;
    }
}
