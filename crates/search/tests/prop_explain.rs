//! Property tests: `explain_knn` / `explain_range` replays are faithful —
//! the per-candidate verdicts telescope to exactly the `SearchStats`
//! funnel, and the replayed results equal the plain query's results.

use proptest::prelude::*;
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_search::{BiBranchFilter, BiBranchMode, HistogramFilter, SearchEngine, Verdict};
use treesim_tree::{Forest, TreeId};

fn random_forest(seed: u64, count: usize) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(2.5, 1.0),
        size: Normal::new(9.0, 3.0),
        label_count: 4,
        decay: 0.3,
        seed_count: 3.min(count),
        tree_count: count,
        rng_seed: seed,
    })
}

/// Shared assertions over one explain report vs. the plain query result.
fn check_report(
    report: &treesim_search::ExplainReport,
    plain: &[treesim_search::Neighbor],
) -> Result<(), TestCaseError> {
    // Per-candidate verdicts telescope to the stats funnel, stage by stage.
    prop_assert!(
        report.check_consistency().is_ok(),
        "explain verdicts disagree with SearchStats: {:?}",
        report.check_consistency()
    );
    // The replay is deterministic: same results as the plain query.
    prop_assert_eq!(report.results.len(), plain.len());
    for (a, b) in report.results.iter().zip(plain) {
        prop_assert_eq!(a.tree, b.tree);
        prop_assert_eq!(a.distance, b.distance);
    }
    // Refined-or-cutoff verdicts account for every refinement attempt
    // (`stats.refined` counts τ-cutoffs too — the candidate was not
    // stage-pruned); in-result marks account for every result.
    let refined = report
        .candidates
        .iter()
        .filter(|c| {
            matches!(
                c.verdict,
                Verdict::Refined { .. } | Verdict::RefineCutoff { .. }
            )
        })
        .count();
    prop_assert_eq!(refined, report.stats.refined);
    let cutoffs = report
        .candidates
        .iter()
        .filter(|c| matches!(c.verdict, Verdict::RefineCutoff { .. }))
        .count();
    prop_assert_eq!(cutoffs, report.stats.refine_cutoffs);
    let in_result = report
        .candidates
        .iter()
        .filter(|c| {
            matches!(
                c.verdict,
                Verdict::Refined {
                    in_result: true,
                    ..
                }
            )
        })
        .count();
    prop_assert_eq!(in_result, report.results.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn explain_knn_is_faithful(seed in 0u64..10_000) {
        let forest = random_forest(seed, 14);
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let query = forest.tree(TreeId((seed % forest.len() as u64) as u32));
        for k in [1usize, 3, 7] {
            let (plain, _) = engine.knn(query, k);
            let report = engine.explain_knn(query, k);
            check_report(&report, &plain)?;
        }
    }

    #[test]
    fn explain_range_is_faithful(seed in 0u64..10_000) {
        let forest = random_forest(seed, 14);
        let engine = SearchEngine::new(&forest, HistogramFilter::build(&forest));
        let query = forest.tree(TreeId((seed % forest.len() as u64) as u32));
        for tau in [0u32, 1, 3, 6] {
            let (plain, _) = engine.range(query, tau);
            let report = engine.explain_range(query, tau);
            check_report(&report, &plain)?;
        }
    }
}

/// The acceptance-scale demo: on a 1000-tree corpus the explain table's
/// stage totals still equal the funnel exactly, and the render carries
/// every stage column.
#[test]
fn explain_on_a_thousand_tree_corpus_telescopes() {
    let forest = random_forest(4242, 1000);
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let query = forest.tree(TreeId(17));
    let report = engine.explain_knn(query, 5);
    assert!(report.check_consistency().is_ok());
    assert_eq!(report.candidates.len(), forest.len());
    let rendered = report.render(20);
    for stage in &report.stage_names {
        assert!(rendered.contains(stage), "missing column {stage}");
    }
    assert!(
        rendered.contains("more rows"),
        "long corpus renders truncated"
    );
}
