//! Property tests for the observability layer: cascade funnel accounting
//! invariants, and the guarantee that span sinks never change query
//! results (observation is passive).

use proptest::prelude::*;
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_search::{BiBranchFilter, BiBranchMode, Neighbor, SearchEngine};
use treesim_tree::{Forest, TreeId};

fn random_forest(seed: u64, count: usize) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(2.5, 1.0),
        size: Normal::new(9.0, 3.0),
        label_count: 4,
        decay: 0.3,
        seed_count: 3.min(count),
        tree_count: count,
        rng_seed: seed,
    })
}

fn positional_engine(forest: &Forest) -> SearchEngine<'_, BiBranchFilter> {
    SearchEngine::new(
        forest,
        BiBranchFilter::build(forest, 2, BiBranchMode::Positional),
    )
}

fn keyed(results: &[Neighbor]) -> Vec<(TreeId, u64)> {
    results.iter().map(|n| (n.tree, n.distance)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Range sweeps narrow stage by stage: what survives stage `s` is
    /// exactly what stage `s + 1` evaluates, and the final stage's
    /// survivors are exactly the refinement set.
    #[test]
    fn range_funnel_telescopes(seed in 0u64..10_000, tau in 0u32..6) {
        let forest = random_forest(seed, 14);
        let engine = positional_engine(&forest);
        let query = forest.tree(TreeId((seed % forest.len() as u64) as u32));
        let (_, stats) = engine.range(query, tau);
        prop_assert!(stats.stages.len() > 1);
        prop_assert_eq!(stats.stages[0].evaluated, forest.len());
        for pair in stats.stages.windows(2) {
            prop_assert_eq!(pair[1].evaluated, pair[0].survivors());
        }
        prop_assert_eq!(stats.stages.last().unwrap().survivors(), stats.refined);
    }

    /// k-NN escalation accounts for every tree exactly once: each
    /// candidate is either refined or pruned at exactly one stage.
    #[test]
    fn knn_accounts_for_every_candidate(seed in 0u64..10_000, k in 1usize..6) {
        let forest = random_forest(seed, 14);
        let engine = positional_engine(&forest);
        let query = forest.tree(TreeId((seed % forest.len() as u64) as u32));
        let (_, stats) = engine.knn(query, k);
        let pruned: usize = stats.stages.iter().map(|s| s.pruned).sum();
        prop_assert_eq!(pruned + stats.refined, forest.len());
        // Lazy escalation: later stages never evaluate more candidates.
        for pair in stats.stages.windows(2) {
            prop_assert!(pair[1].evaluated <= pair[0].evaluated);
        }
    }

    /// Installing or removing a span sink never changes results: the
    /// neighbor lists (ids AND distances) are identical with no sink,
    /// with a TestSink capturing every event, and after removal.
    #[test]
    fn sink_never_changes_results(seed in 0u64..10_000, k in 1usize..5, tau in 0u32..5) {
        let forest = random_forest(seed, 12);
        let engine = positional_engine(&forest);
        let query = forest.tree(TreeId((seed % forest.len() as u64) as u32));

        let bare_knn = keyed(&engine.knn(query, k).0);
        let bare_range = keyed(&engine.range(query, tau).0);

        let sink = treesim_obs::TestSink::new();
        treesim_obs::install_sink(sink.clone());
        let observed_knn = keyed(&engine.knn(query, k).0);
        let observed_range = keyed(&engine.range(query, tau).0);
        let captured = sink.events().len();
        treesim_obs::clear_sink();

        let after_knn = keyed(&engine.knn(query, k).0);
        let after_range = keyed(&engine.range(query, tau).0);

        prop_assert!(captured >= 2, "sink saw no span events");
        prop_assert_eq!(&observed_knn, &bare_knn, "sink changed knn results");
        prop_assert_eq!(&observed_range, &bare_range, "sink changed range results");
        prop_assert_eq!(&after_knn, &bare_knn, "sink removal changed knn results");
        prop_assert_eq!(&after_range, &bare_range, "sink removal changed range results");
    }
}
