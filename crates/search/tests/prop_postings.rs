//! Property tests for the stage −1 postings candidate generator and the
//! sharded engine.
//!
//! The no-false-negative guarantee (DESIGN: the stage −1 bound never
//! exceeds the exact edit distance, even when query branches are missing
//! from the dataset vocabulary) is exercised three ways:
//!
//! 1. the postings cascade returns exactly the brute-force answer;
//! 2. the stage −1 candidate set is a superset of every true range /
//!    k-NN result (pointwise `bound ≤ EDist`);
//! 3. a query whose labels are 100% out-of-vocabulary — the generator
//!    produces *zero* candidates, yet results stay exact because the
//!    unmatched query mass is accounted into the bound.
//!
//! Shard-count invariance: S=1 and S=4 return identical results and
//! telescoping merged funnels.

use proptest::prelude::*;
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_edit::edit_distance;
use treesim_search::{Filter, PostingsFilter, SearchEngine, ShardedEngine, ShardedForest};
use treesim_tree::{Forest, TreeId};

fn random_forest(seed: u64, count: usize) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(2.5, 1.0),
        size: Normal::new(9.0, 3.0),
        label_count: 4,
        decay: 0.3,
        seed_count: 3.min(count),
        tree_count: count,
        rng_seed: seed,
    })
}

/// Brute-force `(EDist, id)` pairs sorted ascending.
fn ground_truth(forest: &Forest, query: &treesim_tree::Tree) -> Vec<(u64, TreeId)> {
    let mut truth: Vec<(u64, TreeId)> = forest
        .iter()
        .map(|(id, t)| (edit_distance(query, t), id))
        .collect();
    truth.sort_unstable();
    truth
}

/// Asserts the postings engine is exact AND that the stage −1 bound never
/// exceeds the true distance on any tree — which makes the surviving
/// candidate set a superset of every true range / k-NN result.
fn check_postings(
    forest: &Forest,
    query: &treesim_tree::Tree,
    expect_zero_candidates: bool,
) -> Result<(), TestCaseError> {
    let filter = PostingsFilter::build(forest, 2);
    let artifact = filter.prepare_query(query);
    if expect_zero_candidates {
        prop_assert_eq!(artifact.candidate_count(), 0, "query shares a branch?");
    }
    let truth = ground_truth(forest, query);

    // Pointwise soundness of the stage −1 bound: the guarantee that the
    // candidate generator admits every true result at every threshold.
    for &(edist, id) in &truth {
        let bound = filter.stage_bound(&artifact, id, 0);
        prop_assert!(
            bound <= edist,
            "stage -1 bound {} above EDist {} for {:?}",
            bound,
            edist,
            id
        );
    }

    let engine = SearchEngine::new(forest, filter);
    for k in [1, 3, forest.len()] {
        let (got, stats) = engine.knn(query, k);
        let got_d: Vec<u64> = got.iter().map(|n| n.distance).collect();
        let want_d: Vec<u64> = truth.iter().take(k).map(|&(d, _)| d).collect();
        prop_assert_eq!(got_d, want_d, "knn mismatch at k={}", k);
        prop_assert!(stats.refined <= forest.len());
    }
    for tau in [0u32, 1, 2, 4, 8] {
        let (got, _) = engine.range(query, tau);
        let want: Vec<(u64, TreeId)> = truth
            .iter()
            .copied()
            .filter(|&(d, _)| d <= u64::from(tau))
            .collect();
        prop_assert_eq!(got.len(), want.len(), "range size mismatch at tau={}", tau);
        // Explicit superset check: every true hit survives the postings
        // stage at this radius.
        let filter = engine.filter();
        let artifact = filter.prepare_query(query);
        for &(_, id) in &want {
            prop_assert!(filter.stage_bound(&artifact, id, 0) <= u64::from(tau));
        }
        for (n, &(d, id)) in got.iter().zip(&want) {
            prop_assert_eq!(n.distance, d);
            prop_assert_eq!(n.tree, id);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn postings_engine_is_exact_and_superset(seed in 0u64..10_000) {
        let forest = random_forest(seed, 12);
        let query_id = TreeId((seed % forest.len() as u64) as u32);
        let query = forest.tree(query_id).clone();
        check_postings(&forest, &query, false)?;
    }

    #[test]
    fn fully_oov_query_keeps_the_guarantee(seed in 0u64..10_000) {
        let forest = random_forest(seed, 10);
        // Labels the synthetic generator can never produce: every branch of
        // this query is out-of-vocabulary, so the generator yields zero
        // candidates and the bound rests entirely on unmatched query mass.
        let mut scratch = Forest::new();
        *scratch.interner_mut() = forest.interner().clone();
        let qid = scratch
            .parse_bracket("zoov0(zoov1(zoov2) zoov3 zoov4)")
            .expect("valid bracket spec");
        let query = scratch.tree(qid).clone();
        check_postings(&forest, &query, true)?;
    }

    #[test]
    fn shard_count_is_invariant(seed in 0u64..10_000) {
        let forest = random_forest(seed, 12);
        let query_id = TreeId((seed % forest.len() as u64) as u32);
        let query = forest.tree(query_id).clone();

        let f1 = ShardedForest::split(&forest, 1);
        let f4 = ShardedForest::split(&forest, 4);
        let e1 = ShardedEngine::new(&f1, |s| PostingsFilter::build(s, 2));
        let e4 = ShardedEngine::new(&f4, |s| PostingsFilter::build(s, 2));
        prop_assert_eq!(e4.shard_count(), 4);

        for k in [1usize, 3, forest.len()] {
            let (r1, s1) = e1.knn(&query, k);
            let (r4, s4) = e4.knn(&query, k);
            prop_assert_eq!(r1, r4, "knn differs at k={}", k);
            prop_assert_eq!(s1.stages[0].evaluated, forest.len());
            prop_assert_eq!(s4.stages[0].evaluated, forest.len());
            let pruned: usize = s4.stages.iter().map(|s| s.pruned).sum();
            prop_assert_eq!(pruned + s4.refined, forest.len());
        }
        for tau in [0u32, 1, 2, 4, 8] {
            let (r1, s1) = e1.range(&query, tau);
            let (r4, s4) = e4.range(&query, tau);
            prop_assert_eq!(&r1, &r4, "range differs at tau={}", tau);
            for stats in [&s1, &s4] {
                prop_assert_eq!(stats.stages[0].evaluated, forest.len());
                for pair in stats.stages.windows(2) {
                    prop_assert_eq!(pair[0].survivors(), pair[1].evaluated);
                }
                prop_assert_eq!(stats.stages.last().unwrap().survivors(), stats.refined);
                prop_assert_eq!(stats.results, r4.len());
            }
        }
    }
}
