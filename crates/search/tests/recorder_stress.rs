//! Flight-recorder integration under real multi-threaded batch traffic.
//!
//! This file deliberately holds a SINGLE test: cargo runs each integration
//! test file in its own process, so nothing else touches the global
//! recorder here and the drain-based assertions can be exact. (Do not add
//! more `#[test]` functions — they would race on the global ring.)

use treesim_obs::recorder::{self, QueryKind};
use treesim_search::{BiBranchFilter, BiBranchMode, SearchEngine};
use treesim_tree::{Forest, Tree, TreeId};

const STAGE_ORDER: [&str; 3] = ["size", "bdist", "propt"];

#[test]
fn batch_queries_record_completely_and_the_ring_stays_bounded() {
    let mut forest = Forest::new();
    for i in 0..50 {
        forest
            .parse_bracket(&format!("a(b{} c(d{} f) e{})", i % 5, i % 3, i % 7))
            .unwrap();
    }
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let recorder = recorder::global();
    let k = 3usize;

    // --- phase A: fewer queries than capacity → exact accounting --------
    recorder.drain();
    let total_before = recorder.recorded_total();
    let queries: Vec<&Tree> = (0..200)
        .map(|i| forest.tree(TreeId((i % forest.len()) as u32)))
        .collect();
    let outcomes = engine.knn_batch_threads(&queries, k, 8);
    assert_eq!(outcomes.len(), queries.len());

    assert_eq!(
        recorder.recorded_total() - total_before,
        queries.len() as u64,
        "one record per batch query"
    );
    let records = recorder.drain();
    assert_eq!(records.len(), queries.len());

    // Every record is complete and internally consistent — a torn write
    // (fields from two different queries) would break these invariants.
    let mut ids: Vec<u64> = Vec::with_capacity(records.len());
    for record in &records {
        ids.push(record.id);
        assert_eq!(record.kind.label(), QueryKind::Knn.label());
        assert!(record.batch, "batch flag set on worker-thread queries");
        assert_eq!(record.param, k as u64);
        assert_eq!(record.dataset, forest.len() as u64);
        assert!(record.results <= k as u64);
        assert!(
            record.refined >= record.results,
            "results come from refinement"
        );
        if let (Some(best), Some(worst)) = (record.best, record.worst) {
            assert!(best <= worst);
        }
        let stages = record.stages();
        assert_eq!(stages.len(), STAGE_ORDER.len());
        for (stage, expected) in stages.iter().zip(STAGE_ORDER) {
            assert_eq!(stage.name, expected, "cascade stages in order");
            assert!(stage.evaluated >= stage.pruned);
        }
        // The funnel telescopes: a candidate reaches stage i+1 only by
        // surviving stage i.
        for pair in stages.windows(2) {
            assert!(pair[1].evaluated <= pair[0].evaluated - pair[0].pruned);
        }
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), records.len(), "sequence ids are unique");

    // Aggregate funnel totals across records equal the per-query
    // SearchStats the batch returned (order-independent comparison).
    for (index, expected_stage) in STAGE_ORDER.iter().enumerate() {
        let recorded: u64 = records.iter().map(|r| r.stages()[index].evaluated).sum();
        let stats: u64 = outcomes
            .iter()
            .map(|(_, s)| s.stages[index].evaluated as u64)
            .sum();
        assert_eq!(recorded, stats, "{expected_stage} evaluated totals");
    }
    let recorded_refined: u64 = records.iter().map(|r| r.refined).sum();
    let stats_refined: u64 = outcomes.iter().map(|(_, s)| s.refined as u64).sum();
    assert_eq!(recorded_refined, stats_refined);

    // --- phase B: overflow the ring → bounded occupancy, total intact ---
    let capacity = recorder.capacity();
    let overflow = capacity + 200;
    let total_before = recorder.recorded_total();
    let queries: Vec<&Tree> = (0..overflow)
        .map(|i| forest.tree(TreeId((i % forest.len()) as u32)))
        .collect();
    engine.knn_batch_threads(&queries, k, 8);
    assert_eq!(
        recorder.recorded_total() - total_before,
        overflow as u64,
        "overwritten records still count toward the total"
    );
    assert_eq!(recorder.len(), capacity, "ring occupancy is capped");
    let snapshot = treesim_obs::metrics::snapshot();
    assert!(
        snapshot.counter("recorder.overwritten").unwrap_or(0) >= 200,
        "overflow shows up as overwritten records"
    );
}
