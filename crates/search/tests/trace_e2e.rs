//! End-to-end trace assembly: `/trace.json` must serve valid Chrome
//! trace-event JSON while real traffic runs, a range query's span tree
//! must telescope to its [`SearchStats`] funnel, and every histogram
//! exemplar must reference a flight record in the recorder ring.
//!
//! Unlike `exporter_e2e.rs`, this file holds several tests, and cargo
//! runs them concurrently in ONE process: the trace ring, sampler
//! knobs, metrics registry and flight recorder are all process
//! globals, so a file-local mutex serializes the tests.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};

use treesim_obs::server::MetricsServer;
use treesim_obs::{trace, Json};
use treesim_search::{BiBranchFilter, BiBranchMode, SearchEngine, ShardedEngine, ShardedForest};
use treesim_tree::{Forest, Tree, TreeId};

/// Serializes the tests in this file (shared process globals). Poison
/// is ignored: a failed test must not cascade into the others.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn forest() -> Forest {
    let mut forest = Forest::new();
    for i in 0..30 {
        forest
            .parse_bracket(&format!("a(b{} c(d{} e) f{})", i % 5, i % 3, i % 7))
            .unwrap();
    }
    forest
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("http header split");
    (head.to_owned(), body.to_owned())
}

#[test]
fn trace_endpoint_serves_valid_chrome_trace_events() {
    let _guard = lock();
    trace::set_sample_every(1); // retain every trace for deterministic assertions

    let forest = forest();
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let query = forest.tree(TreeId(0));

    // Traffic covering single-threaded, batch-worker and shard-worker
    // span deposits.
    engine.knn(query, 3);
    engine.range(query, 2);
    let queries: Vec<&Tree> = (0..8).map(|i| forest.tree(TreeId(i))).collect();
    engine.knn_batch_threads(&queries, 3, 4);
    let sharded_forest = ShardedForest::split(&forest, 3);
    let sharded = ShardedEngine::new(&sharded_forest, |shard| {
        BiBranchFilter::build(shard, 2, BiBranchMode::Positional)
    });
    sharded.knn(query, 3);
    sharded.range(query, 2);

    let handle = MetricsServer::bind("127.0.0.1:0")
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server thread");
    let (head, body) = http_get(handle.addr(), "/trace.json");
    handle.shutdown();

    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    let doc = treesim_obs::parse_json(&body).expect("trace.json parses as JSON");
    assert_eq!(
        doc.get("otherData")
            .and_then(|o| o.get("schema"))
            .and_then(Json::as_str),
        Some("treesim-trace/v1")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "no trace events after traced traffic");

    // Every event is a well-formed `ph:"X"` complete event with worker
    // placement and a span-tree back-pointer in args.
    for event in events {
        let name = event.get("name").and_then(Json::as_str).expect("name");
        assert!(!name.is_empty());
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        for field in ["ts", "dur", "pid", "tid"] {
            assert!(
                event.get(field).and_then(Json::as_u64).is_some(),
                "event {name:?} lacks numeric {field}"
            );
        }
        let args = event.get("args").expect("args object");
        assert!(
            args.get("trace")
                .and_then(Json::as_u64)
                .is_some_and(|t| t > 0),
            "event {name:?} lacks a nonzero trace id"
        );
        assert!(
            args.get("span")
                .and_then(Json::as_u64)
                .is_some_and(|s| s > 0),
            "event {name:?} lacks a nonzero span id"
        );
        assert!(
            args.get("parent").and_then(Json::as_u64).is_some(),
            "event {name:?} lacks a parent pointer"
        );
    }

    // Cross-thread reassembly made it into the export: batch workers
    // (tid ≥ 1) and shard workers (pid ≥ 1) both deposited spans.
    let placed = |name: &str, key: &str| {
        events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some(name)
                && e.get(key).and_then(Json::as_u64).is_some_and(|v| v >= 1)
        })
    };
    assert!(
        placed("engine.batch.worker", "tid"),
        "no engine.batch.worker span on tid ≥ 1"
    );
    assert!(
        placed("shard.worker", "pid"),
        "no shard.worker span on pid ≥ 1"
    );
}

#[test]
fn span_tree_telescopes_to_search_stats_funnel() {
    let _guard = lock();
    trace::set_sample_every(1);
    trace::clear();

    let forest = forest();
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let (_, stats) = engine.range(forest.tree(TreeId(0)), 2);

    let traced = trace::latest().expect("range query retained a trace");
    assert_eq!(traced.root(), "engine.range");
    let root = traced
        .spans
        .iter()
        .min_by_key(|s| s.id)
        .expect("root span")
        .clone();

    // One cascade child per stage, in stage order, whose evaluated /
    // pruned fields are exactly the query's `SearchStats` funnel.
    assert!(stats.stages.len() > 1, "expected a multi-stage cascade");
    let mut last_start = 0u64;
    for stage in &stats.stages {
        let span = traced
            .spans
            .iter()
            .find(|s| s.name == format!("cascade.{}", stage.name))
            .unwrap_or_else(|| panic!("no cascade.{} span in trace", stage.name));
        assert_eq!(span.parent, root.id, "stage span must nest under the query");
        let field = |key: &str| {
            span.fields
                .iter()
                .find(|(k, _)| *k == key)
                .and_then(|(_, v)| v.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("cascade.{} lacks field {key}", stage.name))
        };
        assert_eq!(field("evaluated"), stage.evaluated);
        assert_eq!(field("pruned"), stage.pruned);
        // Stage intervals telescope: each child lies inside the query
        // span (±2µs: start and duration are floored independently) and
        // stages run coarsest-first.
        assert!(span.start_us >= root.start_us);
        assert!(span.end_us() <= root.end_us() + 2);
        assert!(span.start_us >= last_start, "stage spans out of order");
        last_start = span.start_us;
    }

    // The funnel itself telescopes through the spans: survivors of
    // stage s equal evaluated of stage s + 1.
    for pair in stats.stages.windows(2) {
        assert_eq!(pair[0].survivors(), pair[1].evaluated);
    }
}

#[test]
fn histogram_exemplars_reference_recorded_queries() {
    let _guard = lock();
    trace::set_sample_every(1);

    let forest = forest();
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    // Bounded traffic (well under the recorder's 1024-record ring) over
    // several query shapes, including the cluster / classify wrappers.
    for i in 0..10 {
        let query = forest.tree(TreeId(i));
        engine.knn(query, 3);
        engine.range(query, 2);
    }
    treesim_search::threshold_clusters(&engine, 1);
    let classes: Vec<usize> = (0..forest.len()).map(|i| i % 2).collect();
    let classifier = treesim_search::KnnClassifier::new(
        SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        ),
        classes,
    );
    classifier.classify(forest.tree(TreeId(1)), 3);

    let recorded: std::collections::HashSet<u64> = treesim_obs::recorder::global()
        .records()
        .iter()
        .map(|r| r.trace_id)
        .filter(|&id| id != 0)
        .collect();
    assert!(
        !recorded.is_empty(),
        "traced traffic left no flight records"
    );

    // Every exemplar stamped on any histogram bucket must point at a
    // query still present in the recorder ring — that is the whole
    // point of exemplars: a tail bucket links to a replayable record.
    let snapshot = treesim_obs::metrics::snapshot();
    let mut exemplar_ids: Vec<u64> = Vec::new();
    for histogram in &snapshot.histograms {
        for &(bucket, id) in &histogram.exemplars {
            assert!(
                recorded.contains(&id),
                "{} bucket {bucket} exemplar trace {id} has no flight record",
                histogram.name
            );
            exemplar_ids.push(id);
        }
    }
    assert!(
        !exemplar_ids.is_empty(),
        "traced traffic stamped no exemplars"
    );

    // And at least the most recent exemplars resolve to full span trees
    // in the trace ring (older ones may have been evicted by design).
    assert!(
        exemplar_ids.iter().any(|&id| trace::find(id).is_some()),
        "no exemplar resolves to a retained trace"
    );
}
