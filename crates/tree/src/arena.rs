//! Arena-based rooted, ordered, labeled trees.
//!
//! A [`Tree`] stores its nodes in a flat arena and encodes structure through
//! `parent` / `first_child` / `last_child` / `next_sibling` / `prev_sibling`
//! links, which makes the left-child/right-sibling (binary tree) view of the
//! paper available without any transformation: the binary left child of a
//! node is its first child and the binary right child is its next sibling.
//!
//! Structural edit operations follow the tree edit model of Zhang & Shasha:
//!
//! * **relabel** a node ([`Tree::relabel`]);
//! * **delete** a non-root node, splicing its children into its place among
//!   its parent's children ([`Tree::remove_node`]);
//! * **insert** a node under a parent, adopting a consecutive run of the
//!   parent's children ([`Tree::insert_above_children`]).
//!
//! Deletions leave tombstones in the arena; the link structure never points
//! at a dead node, so traversals are unaffected. [`Tree::compact`] rebuilds a
//! dense arena.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TreeError;
use crate::label::LabelId;

/// Index of a node within its [`Tree`]'s arena.
///
/// Node ids are stable under relabeling, insertion and deletion, but not
/// across [`Tree::compact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw arena index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeData {
    label: LabelId,
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    prev_sibling: u32,
    alive: bool,
}

impl NodeData {
    fn new(label: LabelId) -> Self {
        NodeData {
            label,
            parent: NIL,
            first_child: NIL,
            last_child: NIL,
            next_sibling: NIL,
            prev_sibling: NIL,
            alive: true,
        }
    }
}

/// A rooted, ordered, labeled tree.
///
/// # Examples
///
/// ```
/// use treesim_tree::{LabelInterner, Tree};
///
/// let mut interner = LabelInterner::new();
/// let a = interner.intern("a");
/// let b = interner.intern("b");
/// let c = interner.intern("c");
///
/// let mut tree = Tree::new(a);
/// let root = tree.root();
/// let nb = tree.add_child(root, b);
/// tree.add_child(root, c);
/// tree.add_child(nb, c);
///
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.degree(root), 2);
/// assert_eq!(tree.height(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<NodeData>,
    root: u32,
    live: u32,
}

impl Tree {
    /// Creates a single-node tree whose root carries `root_label`.
    pub fn new(root_label: LabelId) -> Self {
        Tree {
            nodes: vec![NodeData::new(root_label)],
            root: 0,
            live: 1,
        }
    }

    /// Creates a tree with capacity for `capacity` nodes.
    pub fn with_capacity(root_label: LabelId, capacity: usize) -> Self {
        let mut nodes = Vec::with_capacity(capacity.max(1));
        nodes.push(NodeData::new(root_label));
        Tree {
            nodes,
            root: 0,
            live: 1,
        }
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(self.root)
    }

    /// Number of live nodes (`|T|` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// Whether the tree has exactly one node. Trees are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Size of the underlying arena, including tombstones of deleted nodes.
    ///
    /// Useful for sizing per-node side tables indexed by [`NodeId::index`].
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `id` refers to a live node of this tree.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|n| n.alive)
    }

    #[inline]
    fn node(&self, id: NodeId) -> &NodeData {
        let data = &self.nodes[id.index()];
        debug_assert!(data.alive, "access to deleted node {id}");
        data
    }

    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut NodeData {
        let data = &mut self.nodes[id.index()];
        debug_assert!(data.alive, "access to deleted node {id}");
        data
    }

    #[inline]
    fn opt(raw: u32) -> Option<NodeId> {
        (raw != NIL).then_some(NodeId(raw))
    }

    /// Label of `id`.
    #[inline]
    pub fn label(&self, id: NodeId) -> LabelId {
        self.node(id).label
    }

    /// Parent of `id`, or `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        Self::opt(self.node(id).parent)
    }

    /// First (leftmost) child of `id`.
    #[inline]
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        Self::opt(self.node(id).first_child)
    }

    /// Last (rightmost) child of `id`.
    #[inline]
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        Self::opt(self.node(id).last_child)
    }

    /// Next sibling to the right of `id`.
    #[inline]
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        Self::opt(self.node(id).next_sibling)
    }

    /// Previous sibling to the left of `id`.
    #[inline]
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        Self::opt(self.node(id).prev_sibling)
    }

    /// Whether `id` has no children.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.node(id).first_child == NIL
    }

    /// Number of children of `id` (fanout).
    pub fn degree(&self, id: NodeId) -> usize {
        self.children(id).count()
    }

    /// Iterates over the children of `id` from left to right.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            tree: self,
            next: self.node(id).first_child,
        }
    }

    /// Iterates over `id`'s proper ancestors, nearest first.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            next: self.node(id).parent,
        }
    }

    /// Child of `id` at position `index`, if any.
    pub fn child_at(&self, id: NodeId, index: usize) -> Option<NodeId> {
        self.children(id).nth(index)
    }

    /// Position of `id` among its parent's children (0 for the root).
    pub fn sibling_index(&self, id: NodeId) -> usize {
        let mut index = 0;
        let mut current = self.node(id).prev_sibling;
        while current != NIL {
            index += 1;
            current = self.nodes[current as usize].prev_sibling;
        }
        index
    }

    /// Depth of `id`, counting the root as depth 1.
    pub fn depth(&self, id: NodeId) -> usize {
        1 + self.ancestors(id).count()
    }

    /// Height of the subtree rooted at `id`, counting `id` itself
    /// (a leaf has height 1).
    pub fn node_height(&self, id: NodeId) -> usize {
        1 + self
            .children(id)
            .map(|c| self.node_height(c))
            .max()
            .unwrap_or(0)
    }

    /// Height of the whole tree (a single-node tree has height 1).
    pub fn height(&self) -> usize {
        self.node_height(self.root())
    }

    /// Number of nodes in the subtree rooted at `id`, including `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        1 + self
            .children(id)
            .map(|c| self.subtree_size(c))
            .sum::<usize>()
    }

    /// Number of leaves of the whole tree.
    pub fn leaf_count(&self) -> usize {
        self.preorder().filter(|&n| self.is_leaf(n)).count()
    }

    /// Changes the label of `id` (the *relabel* edit operation).
    pub fn relabel(&mut self, id: NodeId, label: LabelId) {
        self.node_mut(id).label = label;
    }

    /// Appends a new node labeled `label` as the last child of `parent`.
    pub fn add_child(&mut self, parent: NodeId, label: LabelId) -> NodeId {
        let new_raw = self.alloc(label);
        let new = NodeId(new_raw);
        let old_last = self.node(parent).last_child;
        {
            let data = &mut self.nodes[new_raw as usize];
            data.parent = parent.0;
            data.prev_sibling = old_last;
        }
        if old_last == NIL {
            self.node_mut(parent).first_child = new_raw;
        } else {
            self.nodes[old_last as usize].next_sibling = new_raw;
        }
        self.node_mut(parent).last_child = new_raw;
        new
    }

    /// Inserts a new node labeled `label` as the child of `parent` at
    /// position `index` (existing children at `index` and later shift right).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ChildIndexOutOfRange`] if `index` exceeds the
    /// current number of children.
    pub fn insert_child_at(
        &mut self,
        parent: NodeId,
        index: usize,
        label: LabelId,
    ) -> Result<NodeId, TreeError> {
        let degree = self.degree(parent);
        if index > degree {
            return Err(TreeError::ChildIndexOutOfRange {
                index,
                degree,
                node: parent.0,
            });
        }
        if index == degree {
            return Ok(self.add_child(parent, label));
        }
        let successor = self.child_at(parent, index).expect("index < degree");
        let new_raw = self.alloc(label);
        let pred = self.node(successor).prev_sibling;
        {
            let data = &mut self.nodes[new_raw as usize];
            data.parent = parent.0;
            data.prev_sibling = pred;
            data.next_sibling = successor.0;
        }
        self.node_mut(successor).prev_sibling = new_raw;
        if pred == NIL {
            self.node_mut(parent).first_child = new_raw;
        } else {
            self.nodes[pred as usize].next_sibling = new_raw;
        }
        Ok(NodeId(new_raw))
    }

    /// The *insert* edit operation: inserts a new node labeled `label` under
    /// `parent`, adopting the consecutive run of `count` children of `parent`
    /// starting at child position `start` as the new node's children.
    ///
    /// With `count == 0` this inserts a new leaf at position `start`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ChildRangeOutOfRange`] if `start + count` exceeds
    /// the number of children of `parent`.
    pub fn insert_above_children(
        &mut self,
        parent: NodeId,
        label: LabelId,
        start: usize,
        count: usize,
    ) -> Result<NodeId, TreeError> {
        let degree = self.degree(parent);
        if start + count > degree {
            return Err(TreeError::ChildRangeOutOfRange {
                start,
                count,
                degree,
                node: parent.0,
            });
        }
        if count == 0 {
            return self.insert_child_at(parent, start, label);
        }
        let first = self.child_at(parent, start).expect("range checked");
        let last = self
            .child_at(parent, start + count - 1)
            .expect("range checked");
        let before = self.node(first).prev_sibling;
        let after = self.node(last).next_sibling;

        let new_raw = self.alloc(label);
        {
            let data = &mut self.nodes[new_raw as usize];
            data.parent = parent.0;
            data.prev_sibling = before;
            data.next_sibling = after;
            data.first_child = first.0;
            data.last_child = last.0;
        }
        if before == NIL {
            self.node_mut(parent).first_child = new_raw;
        } else {
            self.nodes[before as usize].next_sibling = new_raw;
        }
        if after == NIL {
            self.node_mut(parent).last_child = new_raw;
        } else {
            self.nodes[after as usize].prev_sibling = new_raw;
        }
        // Reparent the adopted run.
        self.node_mut(first).prev_sibling = NIL;
        self.node_mut(last).next_sibling = NIL;
        let mut cursor = first.0;
        loop {
            self.nodes[cursor as usize].parent = new_raw;
            if cursor == last.0 {
                break;
            }
            cursor = self.nodes[cursor as usize].next_sibling;
        }
        Ok(NodeId(new_raw))
    }

    /// The *delete* edit operation: removes `id`, splicing its children into
    /// its former position among its parent's children.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::CannotDeleteRoot`] when `id` is the root (the
    /// Zhang–Shasha edit model never deletes the root of a tree).
    pub fn remove_node(&mut self, id: NodeId) -> Result<(), TreeError> {
        if id.0 == self.root {
            return Err(TreeError::CannotDeleteRoot);
        }
        let NodeData {
            parent,
            first_child,
            last_child,
            next_sibling,
            prev_sibling,
            ..
        } = *self.node(id);
        debug_assert_ne!(parent, NIL);

        // Reparent children.
        let mut cursor = first_child;
        while cursor != NIL {
            self.nodes[cursor as usize].parent = parent;
            cursor = self.nodes[cursor as usize].next_sibling;
        }

        let (splice_head, splice_tail) = if first_child == NIL {
            (next_sibling, prev_sibling)
        } else {
            (first_child, last_child)
        };

        // Link the left boundary.
        if prev_sibling == NIL {
            self.nodes[parent as usize].first_child = splice_head;
        } else if first_child == NIL {
            self.nodes[prev_sibling as usize].next_sibling = next_sibling;
        } else {
            self.nodes[prev_sibling as usize].next_sibling = first_child;
            self.nodes[first_child as usize].prev_sibling = prev_sibling;
        }
        // Link the right boundary.
        if next_sibling == NIL {
            self.nodes[parent as usize].last_child = splice_tail;
        } else if first_child == NIL {
            self.nodes[next_sibling as usize].prev_sibling = prev_sibling;
        } else {
            self.nodes[last_child as usize].next_sibling = next_sibling;
            self.nodes[next_sibling as usize].prev_sibling = last_child;
        }
        // Fix dangling edges when the node was first/last among its siblings
        // and had children (handled above), or had no children and no
        // siblings on one side (heads set to NIL correctly by splice_head).
        if first_child == NIL && prev_sibling == NIL && next_sibling != NIL {
            self.nodes[next_sibling as usize].prev_sibling = NIL;
        }
        if first_child == NIL && next_sibling == NIL && prev_sibling != NIL {
            self.nodes[prev_sibling as usize].next_sibling = NIL;
        }
        if first_child != NIL && prev_sibling == NIL {
            self.nodes[first_child as usize].prev_sibling = NIL;
        }
        if first_child != NIL && next_sibling == NIL {
            self.nodes[last_child as usize].next_sibling = NIL;
        }

        let data = &mut self.nodes[id.index()];
        data.alive = false;
        data.parent = NIL;
        data.first_child = NIL;
        data.last_child = NIL;
        data.next_sibling = NIL;
        data.prev_sibling = NIL;
        self.live -= 1;
        Ok(())
    }

    fn alloc(&mut self, label: LabelId) -> u32 {
        let raw = u32::try_from(self.nodes.len()).expect("tree too large");
        self.nodes.push(NodeData::new(label));
        self.live += 1;
        raw
    }

    /// Rebuilds the tree with a dense arena (no tombstones) in preorder node
    /// layout. Node ids are re-assigned; the returned tree is structurally
    /// equal to `self`.
    pub fn compact(&self) -> Tree {
        let mut out = Tree::with_capacity(self.label(self.root()), self.len());
        let mut stack: Vec<(NodeId, NodeId)> = self
            .children(self.root())
            .map(|c| (c, out.root()))
            .collect::<Vec<_>>();
        stack.reverse();
        while let Some((old, new_parent)) = stack.pop() {
            let new = out.add_child(new_parent, self.label(old));
            let mut kids: Vec<_> = self.children(old).map(|c| (c, new)).collect();
            kids.reverse();
            stack.extend(kids);
        }
        out
    }

    /// Checks internal link consistency; used by tests and debug assertions.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::Corrupt`] describing the first inconsistency
    /// found, if any.
    pub fn validate(&self) -> Result<(), TreeError> {
        let corrupt = |what: &str| TreeError::Corrupt(what.to_owned());
        if !self.nodes[self.root as usize].alive {
            return Err(corrupt("dead root"));
        }
        if self.nodes[self.root as usize].parent != NIL {
            return Err(corrupt("root has a parent"));
        }
        let mut seen = 0usize;
        let mut stack = vec![NodeId(self.root)];
        while let Some(id) = stack.pop() {
            seen += 1;
            if seen > self.len() {
                return Err(corrupt("cycle or overcount in child links"));
            }
            let data = &self.nodes[id.index()];
            if !data.alive {
                return Err(corrupt("link to dead node"));
            }
            let mut prev = NIL;
            let mut cursor = data.first_child;
            while cursor != NIL {
                let child = &self.nodes[cursor as usize];
                if !child.alive {
                    return Err(corrupt("dead child"));
                }
                if child.parent != id.0 {
                    return Err(corrupt("child parent link mismatch"));
                }
                if child.prev_sibling != prev {
                    return Err(corrupt("prev_sibling link mismatch"));
                }
                stack.push(NodeId(cursor));
                prev = cursor;
                cursor = child.next_sibling;
            }
            if data.last_child != prev {
                return Err(corrupt("last_child link mismatch"));
            }
        }
        if seen != self.len() {
            return Err(corrupt("live count mismatch"));
        }
        Ok(())
    }
}

/// Order-sensitive structural equality on labels and shape.
impl PartialEq for Tree {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut stack = vec![(self.root(), other.root())];
        while let Some((a, b)) = stack.pop() {
            if self.label(a) != other.label(b) {
                return false;
            }
            let mut ca = self.children(a);
            let mut cb = other.children(b);
            loop {
                match (ca.next(), cb.next()) {
                    (None, None) => break,
                    (Some(x), Some(y)) => stack.push((x, y)),
                    _ => return false,
                }
            }
        }
        true
    }
}

impl Eq for Tree {}

/// Iterator over a node's children, left to right.
#[derive(Debug, Clone)]
pub struct Children<'a> {
    tree: &'a Tree,
    next: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next == NIL {
            return None;
        }
        let id = NodeId(self.next);
        self.next = self.tree.nodes[id.index()].next_sibling;
        Some(id)
    }
}

/// Iterator over a node's proper ancestors, nearest first.
#[derive(Debug, Clone)]
pub struct Ancestors<'a> {
    tree: &'a Tree,
    next: u32,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next == NIL {
            return None;
        }
        let id = NodeId(self.next);
        self.next = self.tree.nodes[id.index()].parent;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelInterner;

    fn labels(n: usize) -> (LabelInterner, Vec<LabelId>) {
        let mut interner = LabelInterner::new();
        let ids = (0..n).map(|i| interner.intern(&format!("l{i}"))).collect();
        (interner, ids)
    }

    /// Builds the paper's example tree T1 from Fig. 1:
    /// a(b(c(d)) b e) — root a; children b, b, e; first b has child c; c has child d.
    fn paper_t1() -> (Tree, Vec<LabelId>) {
        let mut interner = LabelInterner::new();
        let (a, b, c, d, e) = (
            interner.intern("a"),
            interner.intern("b"),
            interner.intern("c"),
            interner.intern("d"),
            interner.intern("e"),
        );
        let mut t = Tree::new(a);
        let root = t.root();
        let n_b1 = t.add_child(root, b);
        t.add_child(root, b);
        t.add_child(root, e);
        let n_c = t.add_child(n_b1, c);
        t.add_child(n_c, d);
        (t, vec![a, b, c, d, e])
    }

    #[test]
    fn build_and_navigate() {
        let (t, ls) = paper_t1();
        t.validate().unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(t.height(), 4);
        assert_eq!(t.degree(t.root()), 3);
        let kids: Vec<_> = t.children(t.root()).map(|c| t.label(c)).collect();
        assert_eq!(kids, vec![ls[1], ls[1], ls[4]]);
        let b1 = t.first_child(t.root()).unwrap();
        assert_eq!(t.depth(b1), 2);
        let c = t.first_child(b1).unwrap();
        let d = t.first_child(c).unwrap();
        assert_eq!(t.depth(d), 4);
        assert!(t.is_leaf(d));
        assert_eq!(t.node_height(b1), 3);
        assert_eq!(t.subtree_size(b1), 3);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.parent(t.root()), None);
        assert_eq!(t.ancestors(d).count(), 3);
    }

    #[test]
    fn sibling_navigation() {
        let (t, _) = paper_t1();
        let b1 = t.first_child(t.root()).unwrap();
        let b2 = t.next_sibling(b1).unwrap();
        let e = t.next_sibling(b2).unwrap();
        assert_eq!(t.next_sibling(e), None);
        assert_eq!(t.prev_sibling(e), Some(b2));
        assert_eq!(t.prev_sibling(b1), None);
        assert_eq!(t.last_child(t.root()), Some(e));
        assert_eq!(t.sibling_index(b1), 0);
        assert_eq!(t.sibling_index(e), 2);
        assert_eq!(t.child_at(t.root(), 1), Some(b2));
        assert_eq!(t.child_at(t.root(), 3), None);
    }

    #[test]
    fn relabel_changes_only_label() {
        let (mut t, ls) = paper_t1();
        let b1 = t.first_child(t.root()).unwrap();
        t.relabel(b1, ls[4]);
        assert_eq!(t.label(b1), ls[4]);
        assert_eq!(t.len(), 6);
        t.validate().unwrap();
    }

    #[test]
    fn delete_inner_node_splices_children() {
        // The paper's Fig. 1 example: deleting the first b of T1 gives T2's
        // shape: a(c(d) b e).
        let (mut t, ls) = paper_t1();
        let b1 = t.first_child(t.root()).unwrap();
        t.remove_node(b1).unwrap();
        t.validate().unwrap();
        assert_eq!(t.len(), 5);
        let kids: Vec<_> = t.children(t.root()).map(|c| t.label(c)).collect();
        assert_eq!(kids, vec![ls[2], ls[1], ls[4]]);
        let c = t.first_child(t.root()).unwrap();
        assert_eq!(t.label(t.first_child(c).unwrap()), ls[3]);
    }

    #[test]
    fn delete_leaf() {
        let (mut t, ls) = paper_t1();
        let b1 = t.first_child(t.root()).unwrap();
        let c = t.first_child(b1).unwrap();
        let d = t.first_child(c).unwrap();
        t.remove_node(d).unwrap();
        t.validate().unwrap();
        assert!(t.is_leaf(c));
        assert_eq!(t.len(), 5);
        assert_eq!(t.label(c), ls[2]);
    }

    #[test]
    fn delete_middle_leaf_keeps_sibling_links() {
        let (mut t, _) = paper_t1();
        let b1 = t.first_child(t.root()).unwrap();
        let b2 = t.next_sibling(b1).unwrap();
        t.remove_node(b2).unwrap();
        t.validate().unwrap();
        let e = t.next_sibling(b1).unwrap();
        assert_eq!(t.prev_sibling(e), Some(b1));
        assert_eq!(t.degree(t.root()), 2);
    }

    #[test]
    fn delete_last_child_with_children() {
        let (mut t, ls) = paper_t1();
        let e = t.last_child(t.root()).unwrap();
        // Give e two children, then delete e: children must splice at tail.
        let x = t.add_child(e, ls[0]);
        let y = t.add_child(e, ls[2]);
        t.remove_node(e).unwrap();
        t.validate().unwrap();
        assert_eq!(t.last_child(t.root()), Some(y));
        assert_eq!(t.parent(x), Some(t.root()));
        let kids: Vec<_> = t.children(t.root()).collect();
        assert_eq!(kids.len(), 4);
    }

    #[test]
    fn cannot_delete_root() {
        let (mut t, _) = paper_t1();
        assert!(matches!(
            t.remove_node(t.root()),
            Err(TreeError::CannotDeleteRoot)
        ));
    }

    #[test]
    fn insert_leaf_at_position() {
        let (mut t, ls) = paper_t1();
        let new = t.insert_child_at(t.root(), 1, ls[3]).unwrap();
        t.validate().unwrap();
        assert_eq!(t.sibling_index(new), 1);
        assert_eq!(t.degree(t.root()), 4);
        assert!(t.is_leaf(new));
        assert!(t.insert_child_at(t.root(), 9, ls[3]).is_err());
    }

    #[test]
    fn insert_above_children_adopts_run() {
        // Insert x under root adopting children 1..3 (second b and e).
        let (mut t, ls) = paper_t1();
        let x = t.insert_above_children(t.root(), ls[3], 1, 2).unwrap();
        t.validate().unwrap();
        assert_eq!(t.degree(t.root()), 2);
        assert_eq!(t.degree(x), 2);
        let adopted: Vec<_> = t.children(x).map(|c| t.label(c)).collect();
        assert_eq!(adopted, vec![ls[1], ls[4]]);
        assert_eq!(t.sibling_index(x), 1);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn insert_above_all_children() {
        let (mut t, ls) = paper_t1();
        let x = t.insert_above_children(t.root(), ls[0], 0, 3).unwrap();
        t.validate().unwrap();
        assert_eq!(t.degree(t.root()), 1);
        assert_eq!(t.first_child(t.root()), Some(x));
        assert_eq!(t.degree(x), 3);
    }

    #[test]
    fn insert_above_zero_children_is_leaf_insert() {
        let (mut t, ls) = paper_t1();
        let x = t.insert_above_children(t.root(), ls[0], 3, 0).unwrap();
        assert!(t.is_leaf(x));
        assert_eq!(t.sibling_index(x), 3);
        assert!(t.insert_above_children(t.root(), ls[0], 3, 2).is_err());
    }

    #[test]
    fn insert_then_delete_roundtrip_preserves_structure() {
        let (t0, ls) = paper_t1();
        let mut t = t0.clone();
        let x = t.insert_above_children(t.root(), ls[3], 0, 2).unwrap();
        t.validate().unwrap();
        t.remove_node(x).unwrap();
        t.validate().unwrap();
        assert_eq!(t, t0);
    }

    #[test]
    fn compact_after_deletions() {
        let (mut t, _) = paper_t1();
        let b1 = t.first_child(t.root()).unwrap();
        t.remove_node(b1).unwrap();
        let compacted = t.compact();
        compacted.validate().unwrap();
        assert_eq!(compacted.len(), 5);
        assert_eq!(compacted, t);
        // Dense arena after compaction.
        assert_eq!(compacted.nodes.len(), 5);
    }

    #[test]
    fn structural_equality_is_order_sensitive() {
        let (_, ls) = labels(3);
        let mut t1 = Tree::new(ls[0]);
        t1.add_child(t1.root(), ls[1]);
        t1.add_child(t1.root(), ls[2]);
        let mut t2 = Tree::new(ls[0]);
        t2.add_child(t2.root(), ls[2]);
        t2.add_child(t2.root(), ls[1]);
        assert_ne!(t1, t2);
        let mut t3 = Tree::new(ls[0]);
        t3.add_child(t3.root(), ls[1]);
        t3.add_child(t3.root(), ls[2]);
        assert_eq!(t1, t3);
    }

    #[test]
    fn deleted_node_not_contained() {
        let (mut t, _) = paper_t1();
        let b1 = t.first_child(t.root()).unwrap();
        assert!(t.contains(b1));
        t.remove_node(b1).unwrap();
        assert!(!t.contains(b1));
        assert!(t.contains(t.root()));
    }
}
