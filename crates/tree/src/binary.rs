//! The (normalized) binary-tree representation of a tree (paper §2.3, §3.2).
//!
//! The left-child/right-sibling correspondence makes the binary tree
//! representation `B(T)` implicit in the arena links:
//!
//! * the binary **left** child of a node is its **first child** in `T`;
//! * the binary **right** child of a node is its **next sibling** in `T`.
//!
//! The *normalized* representation pads every missing child with an `ε`
//! node so that every original node has exactly two binary children
//! (Fig. 2 of the paper). [`BinaryView`] exposes that navigation without
//! materializing anything; [`Tree::to_normalized_binary_tree`] materializes
//! it for display and tests.

use crate::arena::{NodeId, Tree};
use crate::label::LabelId;

/// A position in the normalized binary tree `B(T)`: either an original node
/// of `T` or an appended `ε` padding node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryNode {
    /// An original node of `T`.
    Real(NodeId),
    /// An appended `ε` node (all its binary children are `ε` too).
    Epsilon,
}

impl BinaryNode {
    /// Whether this is an `ε` padding node.
    #[inline]
    pub fn is_epsilon(self) -> bool {
        matches!(self, BinaryNode::Epsilon)
    }
}

/// Zero-cost navigation of the normalized binary representation of a tree.
///
/// # Examples
///
/// ```
/// use treesim_tree::{BinaryNode, BinaryView, LabelId, LabelInterner, Tree};
///
/// let mut interner = LabelInterner::new();
/// let a = interner.intern("a");
/// let b = interner.intern("b");
/// let mut tree = Tree::new(a);
/// tree.add_child(tree.root(), b);
///
/// let view = BinaryView::new(&tree);
/// let root = BinaryNode::Real(tree.root());
/// assert_eq!(view.label(view.left(root)), b);
/// assert_eq!(view.label(view.right(root)), LabelId::EPSILON); // root has no sibling
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BinaryView<'a> {
    tree: &'a Tree,
}

impl<'a> BinaryView<'a> {
    /// Creates a view over `tree`.
    pub fn new(tree: &'a Tree) -> Self {
        BinaryView { tree }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &'a Tree {
        self.tree
    }

    /// Root of `B(T)` (same node as the root of `T`).
    pub fn root(&self) -> BinaryNode {
        BinaryNode::Real(self.tree.root())
    }

    /// Binary left child: first child in `T`, or `ε`.
    pub fn left(&self, node: BinaryNode) -> BinaryNode {
        match node {
            BinaryNode::Real(id) => self
                .tree
                .first_child(id)
                .map_or(BinaryNode::Epsilon, BinaryNode::Real),
            BinaryNode::Epsilon => BinaryNode::Epsilon,
        }
    }

    /// Binary right child: next sibling in `T`, or `ε`.
    pub fn right(&self, node: BinaryNode) -> BinaryNode {
        match node {
            BinaryNode::Real(id) => self
                .tree
                .next_sibling(id)
                .map_or(BinaryNode::Epsilon, BinaryNode::Real),
            BinaryNode::Epsilon => BinaryNode::Epsilon,
        }
    }

    /// Label of a binary node (`ε` nodes carry [`LabelId::EPSILON`]).
    pub fn label(&self, node: BinaryNode) -> LabelId {
        match node {
            BinaryNode::Real(id) => self.tree.label(id),
            BinaryNode::Epsilon => LabelId::EPSILON,
        }
    }

    /// The two-level binary branch rooted at `id`
    /// (Definition 2: `BiB(u) = ⟨label(u), label(left), label(right)⟩`).
    pub fn branch(&self, id: NodeId) -> [LabelId; 3] {
        let node = BinaryNode::Real(id);
        [
            self.label(node),
            self.label(self.left(node)),
            self.label(self.right(node)),
        ]
    }

    /// Writes the preorder label sequence of the perfect binary subtree of
    /// height `q − 1` rooted at `id` into `out` (the *q-level binary branch*,
    /// Definition 5). `out` is cleared first; its final length is `2^q − 1`.
    pub fn q_branch_into(&self, id: NodeId, q: usize, out: &mut Vec<LabelId>) {
        assert!(q >= 1, "q-level branches require q >= 1");
        out.clear();
        self.q_branch_rec(BinaryNode::Real(id), q, out);
    }

    fn q_branch_rec(&self, node: BinaryNode, levels: usize, out: &mut Vec<LabelId>) {
        out.push(self.label(node));
        if levels > 1 {
            self.q_branch_rec(self.left(node), levels - 1, out);
            self.q_branch_rec(self.right(node), levels - 1, out);
        }
    }
}

impl Tree {
    /// Materializes the normalized binary representation `B(T)` as a tree
    /// whose every original node has exactly two children (left, right) and
    /// whose padding nodes are labeled [`LabelId::EPSILON`] — the shape shown
    /// in Fig. 2 of the paper. Intended for display, tests and teaching; all
    /// algorithms use [`BinaryView`] instead.
    pub fn to_normalized_binary_tree(&self) -> Tree {
        let view = BinaryView::new(self);
        let mut out = Tree::with_capacity(self.label(self.root()), self.len() * 2 + 1);
        let mut stack = vec![(view.root(), out.root())];
        while let Some((node, target)) = stack.pop() {
            if node.is_epsilon() {
                continue;
            }
            let left = view.left(node);
            let right = view.right(node);
            let lchild = out.add_child(target, view.label(left));
            let rchild = out.add_child(target, view.label(right));
            stack.push((left, lchild));
            stack.push((right, rchild));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelInterner;

    /// A tree in the spirit of the paper's Fig. 1 T1: a( b(c, d), b, e ).
    fn fig1_t1(interner: &mut LabelInterner) -> Tree {
        let (a, b, c, d, e) = (
            interner.intern("a"),
            interner.intern("b"),
            interner.intern("c"),
            interner.intern("d"),
            interner.intern("e"),
        );
        let mut t = Tree::new(a);
        let root = t.root();
        let nb1 = t.add_child(root, b);
        t.add_child(root, b);
        t.add_child(root, e);
        t.add_child(nb1, c);
        t.add_child(nb1, d);
        t
    }

    #[test]
    fn left_is_first_child_right_is_next_sibling() {
        let mut interner = LabelInterner::new();
        let t = fig1_t1(&mut interner);
        let view = BinaryView::new(&t);
        let root = view.root();
        let b1 = view.left(root);
        assert_eq!(view.label(b1), interner.get("b").unwrap());
        assert!(view.right(root).is_epsilon(), "root has no sibling");
        let c = view.left(b1);
        assert_eq!(view.label(c), interner.get("c").unwrap());
        let b2 = view.right(b1);
        assert_eq!(view.label(b2), interner.get("b").unwrap());
        let e = view.right(b2);
        assert_eq!(view.label(e), interner.get("e").unwrap());
        assert!(view.left(e).is_epsilon());
        assert!(view.right(e).is_epsilon());
    }

    #[test]
    fn epsilon_children_are_epsilon() {
        let mut interner = LabelInterner::new();
        let t = fig1_t1(&mut interner);
        let view = BinaryView::new(&t);
        assert!(view.left(BinaryNode::Epsilon).is_epsilon());
        assert!(view.right(BinaryNode::Epsilon).is_epsilon());
        assert_eq!(view.label(BinaryNode::Epsilon), LabelId::EPSILON);
    }

    #[test]
    fn two_level_branch_matches_definition() {
        let mut interner = LabelInterner::new();
        let t = fig1_t1(&mut interner);
        let view = BinaryView::new(&t);
        let (a, b, c, e) = (
            interner.get("a").unwrap(),
            interner.get("b").unwrap(),
            interner.get("c").unwrap(),
            interner.get("e").unwrap(),
        );
        assert_eq!(view.branch(t.root()), [a, b, LabelId::EPSILON]);
        let b1 = t.first_child(t.root()).unwrap();
        assert_eq!(view.branch(b1), [b, c, b]);
        let last = t.last_child(t.root()).unwrap();
        assert_eq!(view.branch(last), [e, LabelId::EPSILON, LabelId::EPSILON]);
    }

    #[test]
    fn q_branch_q2_equals_two_level_branch() {
        let mut interner = LabelInterner::new();
        let t = fig1_t1(&mut interner);
        let view = BinaryView::new(&t);
        let mut buffer = Vec::new();
        for node in t.preorder() {
            view.q_branch_into(node, 2, &mut buffer);
            assert_eq!(buffer.as_slice(), view.branch(node).as_slice());
        }
    }

    #[test]
    fn q_branch_has_length_two_pow_q_minus_one() {
        let mut interner = LabelInterner::new();
        let t = fig1_t1(&mut interner);
        let view = BinaryView::new(&t);
        let mut buffer = Vec::new();
        for q in 1..=5 {
            view.q_branch_into(t.root(), q, &mut buffer);
            assert_eq!(buffer.len(), (1 << q) - 1);
        }
    }

    #[test]
    fn q_branch_pads_with_epsilon_below_leaves() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("a");
        let t = Tree::new(a);
        let view = BinaryView::new(&t);
        let mut buffer = Vec::new();
        view.q_branch_into(t.root(), 3, &mut buffer);
        // Preorder of the perfect height-2 binary tree: root, L, LL, LR, R, RL, RR.
        assert_eq!(buffer[0], a);
        assert!(buffer[1..].iter().all(|l| l.is_epsilon()));
        assert_eq!(buffer.len(), 7);
    }

    #[test]
    fn normalized_binary_tree_is_full_with_epsilon_leaves() {
        let mut interner = LabelInterner::new();
        let t = fig1_t1(&mut interner);
        let binary = t.to_normalized_binary_tree();
        binary.validate().unwrap();
        // Every original node has exactly 2 children; ε nodes are leaves.
        let mut real = 0;
        let mut eps = 0;
        for node in binary.preorder() {
            if binary.label(node).is_epsilon() {
                assert!(binary.is_leaf(node));
                eps += 1;
            } else {
                assert_eq!(binary.degree(node), 2);
                real += 1;
            }
        }
        assert_eq!(real, t.len());
        // A full binary tree with n internal nodes has n + 1 leaves.
        assert_eq!(eps, t.len() + 1);
    }
}
