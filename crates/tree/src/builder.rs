//! Incremental, nesting-based tree construction.

use crate::arena::{NodeId, Tree};
use crate::error::TreeError;
use crate::label::{LabelId, LabelInterner};

/// Builds a [`Tree`] through nested `open` / `close` calls.
///
/// # Examples
///
/// ```
/// use treesim_tree::{LabelInterner, TreeBuilder};
///
/// let mut interner = LabelInterner::new();
/// let mut builder = TreeBuilder::new();
/// builder.open(interner.intern("a"));
/// builder.open(interner.intern("b"));
/// builder.leaf(interner.intern("c"));
/// builder.close().unwrap();
/// builder.close().unwrap();
/// let tree = builder.finish().unwrap();
/// assert_eq!(tree.len(), 3);
/// assert_eq!(tree.height(), 3);
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    tree: Option<Tree>,
    stack: Vec<NodeId>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TreeBuilder {
            tree: None,
            stack: Vec::new(),
        }
    }

    /// Opens a node; subsequent nodes become its children until [`close`].
    ///
    /// The first `open` creates the root. Returns the new node's id.
    ///
    /// [`close`]: TreeBuilder::close
    ///
    /// # Panics
    ///
    /// Panics when opening a second root (i.e., the root was already closed).
    pub fn open(&mut self, label: LabelId) -> NodeId {
        match (&mut self.tree, self.stack.last()) {
            (None, _) => {
                let tree = Tree::new(label);
                let root = tree.root();
                self.tree = Some(tree);
                self.stack.push(root);
                root
            }
            (Some(tree), Some(&parent)) => {
                let id = tree.add_child(parent, label);
                self.stack.push(id);
                id
            }
            (Some(_), None) => panic!("TreeBuilder: cannot open a second root"),
        }
    }

    /// Adds a leaf child to the currently open node (open + immediate close).
    ///
    /// # Panics
    ///
    /// Panics when no node is open and a root already exists.
    pub fn leaf(&mut self, label: LabelId) -> NodeId {
        let id = self.open(label);
        self.close().expect("leaf: just opened");
        id
    }

    /// Closes the most recently opened node.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnbalancedBuilder`] if no node is open.
    pub fn close(&mut self) -> Result<(), TreeError> {
        self.stack
            .pop()
            .map(|_| ())
            .ok_or(TreeError::UnbalancedBuilder { open: 0 })
    }

    /// Number of nodes currently open.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Id of the currently open node, if any.
    pub fn current(&self) -> Option<NodeId> {
        self.stack.last().copied()
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnbalancedBuilder`] if nodes are still open or no
    /// root was ever created.
    pub fn finish(self) -> Result<Tree, TreeError> {
        if !self.stack.is_empty() {
            return Err(TreeError::UnbalancedBuilder {
                open: self.stack.len(),
            });
        }
        self.tree.ok_or(TreeError::UnbalancedBuilder { open: 0 })
    }
}

/// Convenience: builds a tree from a nested-tuple-like description in tests
/// and examples, interning labels on the fly.
///
/// `spec` is a bracket expression such as `"a(b(c) d)"`; see
/// [`crate::parse::bracket`] for the grammar.
pub fn tree_from_bracket(
    interner: &mut LabelInterner,
    spec: &str,
) -> Result<Tree, crate::error::ParseError> {
    crate::parse::bracket::parse(interner, spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_tree() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        let mut builder = TreeBuilder::new();
        let root = builder.open(a);
        builder.leaf(b);
        builder.open(b);
        builder.leaf(a);
        builder.close().unwrap();
        builder.close().unwrap();
        let tree = builder.finish().unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.root(), root);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.degree(tree.root()), 2);
    }

    #[test]
    fn finish_with_open_nodes_errors() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("a");
        let mut builder = TreeBuilder::new();
        builder.open(a);
        assert!(matches!(
            builder.finish(),
            Err(TreeError::UnbalancedBuilder { open: 1 })
        ));
    }

    #[test]
    fn close_without_open_errors() {
        let mut builder = TreeBuilder::new();
        assert!(builder.close().is_err());
    }

    #[test]
    fn finish_without_root_errors() {
        let builder = TreeBuilder::new();
        assert!(builder.finish().is_err());
    }

    #[test]
    fn depth_and_current_track_nesting() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("a");
        let mut builder = TreeBuilder::new();
        assert_eq!(builder.depth(), 0);
        assert_eq!(builder.current(), None);
        let root = builder.open(a);
        assert_eq!(builder.depth(), 1);
        assert_eq!(builder.current(), Some(root));
        builder.close().unwrap();
        assert_eq!(builder.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "second root")]
    fn second_root_panics() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("a");
        let mut builder = TreeBuilder::new();
        builder.open(a);
        builder.close().unwrap();
        builder.open(a);
    }
}
