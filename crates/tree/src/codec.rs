//! Compact binary on-disk format for tree datasets.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "TSF1"                         4 bytes
//! labels  count:u32, then per label      (skips the reserved ε slot)
//!         len:u32 + UTF-8 bytes
//! trees   count:u32, then per tree
//!         node_count:u32, then node_count × (label:u32, child_count:u32)
//!         in preorder
//! ```
//!
//! The preorder `(label, child_count)` stream reconstructs each tree
//! exactly (structure and labels); tombstones from deleted nodes are
//! compacted away on encode. Decoding validates the magic, every label
//! reference and the per-tree node counts, and fails cleanly on truncated
//! or corrupted input.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::arena::Tree;
use crate::forest::Forest;
use crate::label::{LabelId, LabelInterner};

/// File magic: "TSF1" (TreeSim Forest, version 1).
pub const MAGIC: [u8; 4] = *b"TSF1";

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// The input ended prematurely.
    Truncated {
        /// What was being read.
        reading: &'static str,
    },
    /// A label string is not valid UTF-8.
    BadLabelUtf8,
    /// A node references a label id outside the encoded label table.
    LabelOutOfRange {
        /// The offending raw label id.
        label: u32,
    },
    /// A tree declared more nodes than its preorder stream provides, or a
    /// child count points past the node stream.
    InconsistentTree,
    /// Trailing bytes after a complete dataset.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a treesim dataset (bad magic)"),
            CodecError::Truncated { reading } => {
                write!(f, "truncated input while reading {reading}")
            }
            CodecError::BadLabelUtf8 => write!(f, "label table contains invalid UTF-8"),
            CodecError::LabelOutOfRange { label } => {
                write!(f, "node references unknown label id {label}")
            }
            CodecError::InconsistentTree => write!(f, "inconsistent tree node stream"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after dataset")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes a forest into the binary format.
pub fn encode_forest(forest: &Forest) -> Bytes {
    let mut out = BytesMut::with_capacity(64 + forest.stats().total_nodes * 8);
    out.put_slice(&MAGIC);

    // Label table, skipping the reserved ε slot (id 0).
    let labels: Vec<&str> = forest
        .interner()
        .iter()
        .skip(1)
        .map(|(_, name)| name)
        .collect();
    out.put_u32_le(labels.len() as u32);
    for name in labels {
        out.put_u32_le(name.len() as u32);
        out.put_slice(name.as_bytes());
    }

    out.put_u32_le(forest.len() as u32);
    for (_, tree) in forest.iter() {
        out.put_u32_le(tree.len() as u32);
        for node in tree.preorder() {
            out.put_u32_le(tree.label(node).as_u32());
            out.put_u32_le(tree.degree(node) as u32);
        }
    }
    out.freeze()
}

/// Decodes a forest from the binary format.
///
/// # Errors
///
/// Returns a [`CodecError`] describing the first structural problem.
pub fn decode_forest(mut input: &[u8]) -> Result<Forest, CodecError> {
    let buf = &mut input;
    if buf.remaining() < 4 || buf.copy_to_bytes(4).as_ref() != MAGIC {
        return Err(CodecError::BadMagic);
    }

    let mut interner = LabelInterner::new();
    let label_count = read_count(buf, "label count", 4)?;
    let mut table = Vec::with_capacity(label_count + 1);
    table.push(LabelId::EPSILON);
    for _ in 0..label_count {
        let len = read_u32(buf, "label length")? as usize;
        if buf.remaining() < len {
            return Err(CodecError::Truncated {
                reading: "label bytes",
            });
        }
        let raw = buf.copy_to_bytes(len);
        let name = std::str::from_utf8(&raw).map_err(|_| CodecError::BadLabelUtf8)?;
        table.push(interner.intern(name));
    }

    let tree_count = read_count(buf, "tree count", 4)?;
    let mut trees = Vec::with_capacity(tree_count);
    for _ in 0..tree_count {
        let node_count = read_count(buf, "node count", 8)?;
        if node_count == 0 {
            return Err(CodecError::InconsistentTree);
        }
        trees.push(decode_tree(buf, node_count, &table)?);
    }
    if buf.has_remaining() {
        return Err(CodecError::TrailingBytes {
            remaining: buf.remaining(),
        });
    }
    Ok(Forest::from_parts(interner, trees))
}

fn decode_tree(buf: &mut &[u8], node_count: usize, table: &[LabelId]) -> Result<Tree, CodecError> {
    let (root_label, root_degree) = read_node(buf, table)?;
    let mut tree = Tree::with_capacity(root_label, node_count);
    // Stack of (parent, remaining children to attach).
    let mut stack = vec![(tree.root(), root_degree)];
    let mut read = 1usize;
    while let Some(&mut (parent, ref mut remaining)) = stack.last_mut() {
        if *remaining == 0 {
            stack.pop();
            continue;
        }
        *remaining -= 1;
        if read == node_count {
            return Err(CodecError::InconsistentTree);
        }
        let (label, degree) = read_node(buf, table)?;
        let node = tree.add_child(parent, label);
        read += 1;
        stack.push((node, degree));
    }
    if read != node_count {
        return Err(CodecError::InconsistentTree);
    }
    Ok(tree)
}

fn read_node(buf: &mut &[u8], table: &[LabelId]) -> Result<(LabelId, u32), CodecError> {
    let raw_label = read_u32(buf, "node label")?;
    let degree = read_u32(buf, "node degree")?;
    let label = *table
        .get(raw_label as usize)
        .ok_or(CodecError::LabelOutOfRange { label: raw_label })?;
    Ok((label, degree))
}

fn read_u32(buf: &mut &[u8], reading: &'static str) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated { reading });
    }
    Ok(buf.get_u32_le())
}

/// Reads a count whose items each occupy at least `bytes_per_item` bytes;
/// counts implying more data than remains are rejected *before* any
/// allocation (corrupted length fields must not trigger huge reserves).
fn read_count(
    buf: &mut &[u8],
    reading: &'static str,
    bytes_per_item: usize,
) -> Result<usize, CodecError> {
    let count = read_u32(buf, reading)? as usize;
    if count.saturating_mul(bytes_per_item) > buf.remaining() {
        return Err(CodecError::Truncated { reading });
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_forest() -> Forest {
        let mut forest = Forest::new();
        forest.parse_bracket("a(b(c d) b e)").unwrap();
        forest.parse_bracket("x").unwrap();
        forest
            .parse_bracket("a('label with spaces'(α β) a)")
            .unwrap();
        forest
    }

    #[test]
    fn roundtrip_preserves_structure_and_labels() {
        let forest = sample_forest();
        let encoded = encode_forest(&forest);
        let decoded = decode_forest(&encoded).unwrap();
        assert_eq!(decoded.len(), forest.len());
        for ((_, a), (_, b)) in forest.iter().zip(decoded.iter()) {
            assert_eq!(a.len(), b.len());
            // Structural equality via rendered bracket strings (label ids
            // may be permuted between interners).
            assert_eq!(
                crate::parse::bracket::to_string(a, forest.interner()),
                crate::parse::bracket::to_string(b, decoded.interner())
            );
        }
    }

    #[test]
    fn roundtrip_after_deletions_compacts() {
        let mut forest = Forest::new();
        forest.parse_bracket("a(b(c) d)").unwrap();
        // Mutate: delete a node, leaving a tombstone in the arena.
        let id = crate::forest::TreeId(0);
        let victim = forest.tree(id).first_child(forest.tree(id).root()).unwrap();
        let mut tree = forest.tree(id).clone();
        tree.remove_node(victim).unwrap();
        let mut mutated = Forest::from_parts(forest.interner().clone(), vec![tree]);
        let decoded = decode_forest(&encode_forest(&mutated)).unwrap();
        assert_eq!(decoded.tree(id).len(), 3);
        decoded.tree(id).validate().unwrap();
        // Round-trip again to ensure stability.
        mutated = decoded;
        let again = decode_forest(&encode_forest(&mutated)).unwrap();
        assert_eq!(again.tree(id).len(), 3);
    }

    #[test]
    fn empty_forest_roundtrip() {
        let forest = Forest::new();
        let decoded = decode_forest(&encode_forest(&forest)).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_forest(b"NOPE").unwrap_err(), CodecError::BadMagic);
        assert_eq!(decode_forest(b"").unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let encoded = encode_forest(&sample_forest());
        for cut in 1..encoded.len() {
            let result = decode_forest(&encoded[..cut]);
            assert!(result.is_err(), "accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_forest(&sample_forest()).to_vec();
        bytes.push(0);
        assert_eq!(
            decode_forest(&bytes).unwrap_err(),
            CodecError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn label_out_of_range_rejected() {
        // Single tree, single node referencing label id 9 (only ε + 1 label).
        let mut bytes = BytesMut::new();
        bytes.put_slice(&MAGIC);
        bytes.put_u32_le(1); // one label
        bytes.put_u32_le(1);
        bytes.put_slice(b"a");
        bytes.put_u32_le(1); // one tree
        bytes.put_u32_le(1); // one node
        bytes.put_u32_le(9); // bogus label
        bytes.put_u32_le(0);
        assert_eq!(
            decode_forest(&bytes).unwrap_err(),
            CodecError::LabelOutOfRange { label: 9 }
        );
    }

    #[test]
    fn inconsistent_node_counts_rejected() {
        // Tree claims 2 nodes but the root has degree 0.
        let mut bytes = BytesMut::new();
        bytes.put_slice(&MAGIC);
        bytes.put_u32_le(1);
        bytes.put_u32_le(1);
        bytes.put_slice(b"a");
        bytes.put_u32_le(1);
        bytes.put_u32_le(2); // claims two nodes
        bytes.put_u32_le(1); // root label "a"
        bytes.put_u32_le(0); // …but no children
                             // Rejected either as truncated (count sanity) or inconsistent.
        assert!(decode_forest(&bytes).is_err());
        // And a zero-node tree is invalid.
        let mut bytes = BytesMut::new();
        bytes.put_slice(&MAGIC);
        bytes.put_u32_le(0);
        bytes.put_u32_le(1);
        bytes.put_u32_le(0);
        assert_eq!(
            decode_forest(&bytes).unwrap_err(),
            CodecError::InconsistentTree
        );
    }

    #[test]
    fn invalid_utf8_label_rejected() {
        let mut bytes = BytesMut::new();
        bytes.put_slice(&MAGIC);
        bytes.put_u32_le(1);
        bytes.put_u32_le(2);
        bytes.put_slice(&[0xff, 0xfe]);
        bytes.put_u32_le(0);
        assert_eq!(decode_forest(&bytes).unwrap_err(), CodecError::BadLabelUtf8);
    }

    #[test]
    fn errors_display() {
        for error in [
            CodecError::BadMagic,
            CodecError::Truncated { reading: "x" },
            CodecError::BadLabelUtf8,
            CodecError::LabelOutOfRange { label: 3 },
            CodecError::InconsistentTree,
            CodecError::TrailingBytes { remaining: 2 },
        ] {
            assert!(!error.to_string().is_empty());
        }
    }
}
