//! Error types of the tree crate.

use std::fmt;

/// Errors raised by structural tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The Zhang–Shasha edit model never deletes the root of a tree.
    CannotDeleteRoot,
    /// A child index beyond the node's degree was requested.
    ChildIndexOutOfRange {
        /// Requested position.
        index: usize,
        /// Node degree at the time of the call.
        degree: usize,
        /// Raw id of the parent node.
        node: u32,
    },
    /// A consecutive child range beyond the node's degree was requested.
    ChildRangeOutOfRange {
        /// First adopted child position.
        start: usize,
        /// Number of adopted children.
        count: usize,
        /// Node degree at the time of the call.
        degree: usize,
        /// Raw id of the parent node.
        node: u32,
    },
    /// Builder misuse: `close` without a matching `open`, or `finish` with
    /// open nodes remaining.
    UnbalancedBuilder {
        /// Number of nodes still open.
        open: usize,
    },
    /// Internal link-structure inconsistency detected by [`crate::Tree::validate`].
    Corrupt(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::CannotDeleteRoot => write!(f, "cannot delete the root node"),
            TreeError::ChildIndexOutOfRange {
                index,
                degree,
                node,
            } => write!(
                f,
                "child index {index} out of range for node n{node} with degree {degree}"
            ),
            TreeError::ChildRangeOutOfRange {
                start,
                count,
                degree,
                node,
            } => write!(
                f,
                "child range {start}..{} out of range for node n{node} with degree {degree}",
                start + count
            ),
            TreeError::UnbalancedBuilder { open } => {
                write!(f, "unbalanced tree builder: {open} node(s) still open")
            }
            TreeError::Corrupt(what) => write!(f, "corrupt tree structure: {what}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Errors raised by the bracket-notation and XML parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Input ended before the tree was complete.
    UnexpectedEof {
        /// What the parser was expecting.
        expected: &'static str,
    },
    /// An unexpected character was found.
    UnexpectedChar {
        /// Byte offset into the input.
        offset: usize,
        /// The offending character.
        found: char,
        /// What the parser was expecting.
        expected: &'static str,
    },
    /// The document contains no root element / label.
    Empty,
    /// Trailing input after a complete tree.
    TrailingInput {
        /// Byte offset where the trailing input begins.
        offset: usize,
    },
    /// A closing XML tag does not match the open element.
    MismatchedTag {
        /// Byte offset of the closing tag.
        offset: usize,
        /// Name of the element being closed.
        expected: String,
        /// Name found in the closing tag.
        found: String,
    },
    /// An unknown or malformed XML entity reference.
    BadEntity {
        /// Byte offset of the entity.
        offset: usize,
    },
    /// A label is empty or contains characters the format cannot represent.
    BadLabel {
        /// Byte offset of the label.
        offset: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseError::UnexpectedChar {
                offset,
                found,
                expected,
            } => write!(
                f,
                "unexpected character {found:?} at offset {offset}, expected {expected}"
            ),
            ParseError::Empty => write!(f, "input contains no tree"),
            ParseError::TrailingInput { offset } => {
                write!(f, "trailing input after complete tree at offset {offset}")
            }
            ParseError::MismatchedTag {
                offset,
                expected,
                found,
            } => write!(
                f,
                "mismatched closing tag </{found}> at offset {offset}, expected </{expected}>"
            ),
            ParseError::BadEntity { offset } => {
                write!(f, "unknown or malformed entity at offset {offset}")
            }
            ParseError::BadLabel { offset } => write!(f, "bad label at offset {offset}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_meaningfully() {
        let messages = [
            TreeError::CannotDeleteRoot.to_string(),
            TreeError::ChildIndexOutOfRange {
                index: 5,
                degree: 2,
                node: 3,
            }
            .to_string(),
            TreeError::ChildRangeOutOfRange {
                start: 1,
                count: 4,
                degree: 2,
                node: 0,
            }
            .to_string(),
            TreeError::UnbalancedBuilder { open: 2 }.to_string(),
            TreeError::Corrupt("x".into()).to_string(),
        ];
        for message in messages {
            assert!(!message.is_empty());
        }
    }

    #[test]
    fn parse_errors_format_meaningfully() {
        let err = ParseError::MismatchedTag {
            offset: 7,
            expected: "a".into(),
            found: "b".into(),
        };
        assert!(err.to_string().contains("</b>"));
        assert!(err.to_string().contains("</a>"));
    }
}
