//! Human-readable tree rendering.

use std::fmt::Write as _;

use crate::arena::{NodeId, Tree};
use crate::label::LabelInterner;

/// Renders `tree` as an indented ASCII outline, one node per line.
///
/// # Examples
///
/// ```
/// use treesim_tree::{fmt::render_outline, parse::bracket, LabelInterner};
///
/// let mut interner = LabelInterner::new();
/// let tree = bracket::parse(&mut interner, "a(b(c) d)").unwrap();
/// let outline = render_outline(&tree, &interner);
/// assert!(outline.contains("a"));
/// assert!(outline.lines().count() == 4);
/// ```
pub fn render_outline(tree: &Tree, interner: &LabelInterner) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", interner.resolve(tree.label(tree.root())));
    let children: Vec<_> = tree.children(tree.root()).collect();
    for (i, child) in children.iter().enumerate() {
        render_node(
            tree,
            interner,
            *child,
            "",
            i + 1 == children.len(),
            &mut out,
        );
    }
    out
}

fn render_node(
    tree: &Tree,
    interner: &LabelInterner,
    node: NodeId,
    prefix: &str,
    is_last: bool,
    out: &mut String,
) {
    let connector = if is_last { "└── " } else { "├── " };
    let _ = writeln!(
        out,
        "{prefix}{connector}{}",
        interner.resolve(tree.label(node))
    );
    let children: Vec<_> = tree.children(node).collect();
    let child_prefix = if is_last {
        format!("{prefix}    ")
    } else {
        format!("{prefix}│   ")
    };
    for (i, child) in children.iter().enumerate() {
        render_node(
            tree,
            interner,
            *child,
            &child_prefix,
            i + 1 == children.len(),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::bracket;

    #[test]
    fn outline_has_one_line_per_node() {
        let mut interner = LabelInterner::new();
        let tree = bracket::parse(&mut interner, "a(b(c d) e)").unwrap();
        let outline = render_outline(&tree, &interner);
        assert_eq!(outline.lines().count(), tree.len());
        assert!(outline.starts_with("a\n"));
    }

    #[test]
    fn single_node_outline() {
        let mut interner = LabelInterner::new();
        let tree = bracket::parse(&mut interner, "solo").unwrap();
        assert_eq!(render_outline(&tree, &interner), "solo\n");
    }

    #[test]
    fn last_child_uses_corner_connector() {
        let mut interner = LabelInterner::new();
        let tree = bracket::parse(&mut interner, "a(b c)").unwrap();
        let outline = render_outline(&tree, &interner);
        assert!(outline.contains("├── b"));
        assert!(outline.contains("└── c"));
    }
}
