//! Datasets of trees sharing one label interner.

use serde::{Deserialize, Serialize};

use crate::arena::Tree;
use crate::label::LabelInterner;

/// Index of a tree within a [`Forest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TreeId(pub u32);

impl TreeId {
    /// Raw index of this tree in its forest.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dataset `D` of rooted, ordered, labeled trees sharing a label universe.
///
/// # Examples
///
/// ```
/// use treesim_tree::{parse::bracket, Forest};
///
/// let mut forest = Forest::new();
/// forest.parse_bracket("a(b c)").unwrap();
/// forest.parse_bracket("a(b)").unwrap();
/// assert_eq!(forest.len(), 2);
/// let stats = forest.stats();
/// assert_eq!(stats.total_nodes, 5);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Forest {
    interner: LabelInterner,
    trees: Vec<Tree>,
}

/// Shape statistics of a forest (the quantities quoted for DBLP in §5:
/// average size 10.15, average depth 2.902).
#[derive(Debug, Clone, PartialEq)]
pub struct ForestStats {
    /// Number of trees.
    pub tree_count: usize,
    /// Sum of tree sizes.
    pub total_nodes: usize,
    /// Mean tree size.
    pub avg_size: f64,
    /// Largest tree size.
    pub max_size: usize,
    /// Mean over trees of the mean node depth (root depth 1).
    pub avg_depth: f64,
    /// Mean tree height.
    pub avg_height: f64,
    /// Mean node fanout over internal nodes (0 if none).
    pub avg_fanout: f64,
    /// Number of distinct labels used (excluding `ε`).
    pub distinct_labels: usize,
}

impl Forest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Forest {
            interner: LabelInterner::new(),
            trees: Vec::new(),
        }
    }

    /// Creates a forest from parts (e.g., a generator's output).
    pub fn from_parts(interner: LabelInterner, trees: Vec<Tree>) -> Self {
        Forest { interner, trees }
    }

    /// The shared label interner.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Mutable access to the interner (e.g., to intern query labels).
    pub fn interner_mut(&mut self) -> &mut LabelInterner {
        &mut self.interner
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Adds a tree, returning its id. The tree must use labels interned in
    /// this forest's interner.
    pub fn push(&mut self, tree: Tree) -> TreeId {
        let id = TreeId(u32::try_from(self.trees.len()).expect("forest too large"));
        self.trees.push(tree);
        id
    }

    /// The tree with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn tree(&self, id: TreeId) -> &Tree {
        &self.trees[id.index()]
    }

    /// The tree with the given id, if present.
    pub fn get(&self, id: TreeId) -> Option<&Tree> {
        self.trees.get(id.index())
    }

    /// Iterates over `(id, tree)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TreeId, &Tree)> {
        self.trees
            .iter()
            .enumerate()
            .map(|(i, t)| (TreeId(i as u32), t))
    }

    /// All trees as a slice.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Parses a bracket-notation tree and adds it.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::ParseError`] from the parser.
    pub fn parse_bracket(&mut self, spec: &str) -> Result<TreeId, crate::error::ParseError> {
        let tree = crate::parse::bracket::parse(&mut self.interner, spec)?;
        Ok(self.push(tree))
    }

    /// Parses an XML document and adds it.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::ParseError`] from the parser.
    pub fn parse_xml(
        &mut self,
        doc: &str,
        options: crate::parse::xml::XmlOptions,
    ) -> Result<TreeId, crate::error::ParseError> {
        let tree = crate::parse::xml::parse(&mut self.interner, doc, options)?;
        Ok(self.push(tree))
    }

    /// Computes shape statistics over all trees.
    pub fn stats(&self) -> ForestStats {
        let tree_count = self.trees.len();
        let mut total_nodes = 0usize;
        let mut max_size = 0usize;
        let mut depth_sum = 0.0f64;
        let mut height_sum = 0usize;
        let mut fanout_sum = 0usize;
        let mut internal_nodes = 0usize;
        let mut used = std::collections::HashSet::new();
        for tree in &self.trees {
            let n = tree.len();
            total_nodes += n;
            max_size = max_size.max(n);
            height_sum += tree.height();
            let mut tree_depth_sum = 0usize;
            for node in tree.preorder() {
                tree_depth_sum += tree.depth(node);
                let degree = tree.degree(node);
                if degree > 0 {
                    fanout_sum += degree;
                    internal_nodes += 1;
                }
                used.insert(tree.label(node));
            }
            depth_sum += tree_depth_sum as f64 / n as f64;
        }
        let denom = tree_count.max(1) as f64;
        ForestStats {
            tree_count,
            total_nodes,
            avg_size: total_nodes as f64 / denom,
            max_size,
            avg_depth: depth_sum / denom,
            avg_height: height_sum as f64 / denom,
            avg_fanout: if internal_nodes == 0 {
                0.0
            } else {
                fanout_sum as f64 / internal_nodes as f64
            },
            distinct_labels: used.len(),
        }
    }
}

impl std::ops::Index<TreeId> for Forest {
    type Output = Tree;

    fn index(&self, id: TreeId) -> &Tree {
        self.tree(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut forest = Forest::new();
        let id0 = forest.parse_bracket("a(b)").unwrap();
        let id1 = forest.parse_bracket("c").unwrap();
        assert_eq!(id0, TreeId(0));
        assert_eq!(id1, TreeId(1));
        assert_eq!(forest.len(), 2);
        assert!(!forest.is_empty());
        assert_eq!(forest[id0].len(), 2);
        assert_eq!(forest.get(TreeId(5)), None);
        assert_eq!(forest.iter().count(), 2);
        assert_eq!(forest.trees().len(), 2);
    }

    #[test]
    fn stats_on_known_forest() {
        let mut forest = Forest::new();
        // a(b c): depths 1,2,2 → avg 5/3; height 2; fanout: one internal node with 2.
        forest.parse_bracket("a(b c)").unwrap();
        // a: single node, depth 1, height 1, no internal nodes.
        forest.parse_bracket("a").unwrap();
        let stats = forest.stats();
        assert_eq!(stats.tree_count, 2);
        assert_eq!(stats.total_nodes, 4);
        assert_eq!(stats.max_size, 3);
        assert!((stats.avg_size - 2.0).abs() < 1e-12);
        assert!((stats.avg_depth - (5.0 / 3.0 + 1.0) / 2.0).abs() < 1e-12);
        assert!((stats.avg_height - 1.5).abs() < 1e-12);
        assert!((stats.avg_fanout - 2.0).abs() < 1e-12);
        assert_eq!(stats.distinct_labels, 3);
    }

    #[test]
    fn empty_forest_stats() {
        let forest = Forest::new();
        let stats = forest.stats();
        assert_eq!(stats.tree_count, 0);
        assert_eq!(stats.total_nodes, 0);
        assert_eq!(stats.avg_size, 0.0);
        assert_eq!(stats.avg_fanout, 0.0);
    }

    #[test]
    fn shared_interner_across_trees() {
        let mut forest = Forest::new();
        let a = forest.parse_bracket("x(y)").unwrap();
        let b = forest.parse_bracket("y(x)").unwrap();
        let ta = &forest[a];
        let tb = &forest[b];
        assert_eq!(
            ta.label(ta.root()),
            tb.label(tb.first_child(tb.root()).unwrap())
        );
    }

    #[test]
    fn xml_into_forest() {
        let mut forest = Forest::new();
        let id = forest
            .parse_xml(
                "<article><title/></article>",
                crate::parse::xml::XmlOptions::STRUCTURE_ONLY,
            )
            .unwrap();
        assert_eq!(forest[id].len(), 2);
    }
}
