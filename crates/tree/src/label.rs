//! Label identifiers and the string interner shared by a dataset.
//!
//! Trees store compact [`LabelId`]s instead of strings; a [`LabelInterner`]
//! owns the bidirectional mapping. The id `0` is reserved for the `ε`
//! (epsilon) label used by the normalized binary-tree representation of the
//! paper (nodes appended to make the binary tree full). `ε` never appears as
//! the label of a real tree node.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Compact identifier of an interned node label.
///
/// `LabelId::EPSILON` (id 0) is reserved for the `ε` padding label of the
/// normalized binary-tree representation and is never returned by
/// [`LabelInterner::intern`] for user strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LabelId(pub(crate) u32);

impl LabelId {
    /// The reserved `ε` label of normalized binary trees.
    pub const EPSILON: LabelId = LabelId(0);

    /// Raw numeric value of this id.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Reconstructs a label id from a raw value previously obtained via
    /// [`LabelId::as_u32`].
    #[inline]
    pub const fn from_u32(raw: u32) -> Self {
        LabelId(raw)
    }

    /// Whether this is the reserved `ε` label.
    #[inline]
    pub const fn is_epsilon(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Bidirectional mapping between label strings and [`LabelId`]s.
///
/// One interner is shared by all trees of a dataset so that equal strings in
/// different trees compare equal as ids. Slot 0 always holds `"ε"`.
///
/// # Examples
///
/// ```
/// use treesim_tree::LabelInterner;
///
/// let mut interner = LabelInterner::new();
/// let a = interner.intern("article");
/// assert_eq!(interner.intern("article"), a);
/// assert_eq!(interner.resolve(a), "article");
/// assert_eq!(interner.len(), 2); // "ε" + "article"
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelInterner {
    map: HashMap<Box<str>, LabelId>,
    names: Vec<Box<str>>,
}

impl LabelInterner {
    /// Creates an interner containing only the reserved `ε` label.
    pub fn new() -> Self {
        let mut interner = LabelInterner {
            map: HashMap::new(),
            names: Vec::new(),
        };
        let eps: Box<str> = "ε".into();
        interner.map.insert(eps.clone(), LabelId::EPSILON);
        interner.names.push(eps);
        interner
    }

    /// Interns `name`, returning its stable id.
    ///
    /// The literal string `"ε"` maps to [`LabelId::EPSILON`].
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = LabelId(u32::try_from(self.names.len()).expect("label universe overflow"));
        let boxed: Box<str> = name.into();
        self.map.insert(boxed.clone(), id);
        self.names.push(boxed);
        id
    }

    /// Looks up a label without interning it.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.map.get(name).copied()
    }

    /// Returns the string for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Returns the string for `id` if it belongs to this interner.
    pub fn try_resolve(&self, id: LabelId) -> Option<&str> {
        self.names.get(id.0 as usize).map(AsRef::as_ref)
    }

    /// Number of interned labels, including the reserved `ε`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner holds only the reserved `ε` label.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Iterates over `(id, name)` pairs in id order, including `ε`.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (LabelId(i as u32), s.as_ref()))
    }
}

impl Default for LabelInterner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_is_reserved_slot_zero() {
        let interner = LabelInterner::new();
        assert_eq!(interner.resolve(LabelId::EPSILON), "ε");
        assert!(LabelId::EPSILON.is_epsilon());
        assert_eq!(interner.len(), 1);
        assert!(interner.is_empty());
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        assert_eq!(a, LabelId(1));
        assert_eq!(b, LabelId(2));
        assert_eq!(interner.intern("a"), a);
        assert_eq!(interner.len(), 3);
        assert!(!interner.is_empty());
    }

    #[test]
    fn literal_epsilon_maps_to_reserved_id() {
        let mut interner = LabelInterner::new();
        assert_eq!(interner.intern("ε"), LabelId::EPSILON);
    }

    #[test]
    fn get_does_not_intern() {
        let mut interner = LabelInterner::new();
        assert_eq!(interner.get("x"), None);
        let x = interner.intern("x");
        assert_eq!(interner.get("x"), Some(x));
    }

    #[test]
    fn resolve_roundtrip() {
        let mut interner = LabelInterner::new();
        let names = ["article", "author", "title", "year"];
        let ids: Vec<_> = names.iter().map(|n| interner.intern(n)).collect();
        for (name, id) in names.iter().zip(&ids) {
            assert_eq!(interner.resolve(*id), *name);
        }
        assert_eq!(interner.try_resolve(LabelId(999)), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut interner = LabelInterner::new();
        interner.intern("b");
        interner.intern("a");
        let collected: Vec<_> = interner.iter().map(|(_, s)| s.to_owned()).collect();
        assert_eq!(collected, vec!["ε", "b", "a"]);
    }

    #[test]
    fn raw_conversion_roundtrip() {
        let id = LabelId::from_u32(42);
        assert_eq!(id.as_u32(), 42);
        assert!(!id.is_epsilon());
    }
}
