//! Arena-based rooted, ordered, labeled trees — the substrate of the
//! `treesim` workspace.
//!
//! This crate provides:
//!
//! * [`Tree`]: an arena tree with first-child / next-sibling links and the
//!   three edit operations of the Zhang–Shasha model (relabel, delete,
//!   insert-above-children);
//! * [`LabelInterner`] / [`LabelId`]: a shared label universe with the
//!   reserved `ε` label of the paper's normalized binary representation;
//! * [`BinaryView`]: the left-child/right-sibling (normalized binary tree)
//!   view used to extract binary branches;
//! * traversals and 1-based pre/postorder [`Positions`];
//! * parsers for bracket notation and a minimal XML subset;
//! * [`Forest`]: a dataset container with shape statistics.
//!
//! # Quick start
//!
//! ```
//! use treesim_tree::{parse::bracket, BinaryView, Forest};
//!
//! let mut forest = Forest::new();
//! let id = forest.parse_bracket("a(b(c d) b e)").unwrap();
//! let tree = &forest[id];
//! let view = BinaryView::new(tree);
//! // The binary branch of the root: ⟨a, first-child=b, sibling=ε⟩.
//! let branch = view.branch(tree.root());
//! assert_eq!(forest.interner().resolve(branch[0]), "a");
//! assert_eq!(forest.interner().resolve(branch[1]), "b");
//! assert!(branch[2].is_epsilon());
//! ```

#![warn(missing_docs)]

mod arena;
mod builder;
mod error;
mod label;

pub mod binary;
pub mod codec;
pub mod fmt;
pub mod forest;
pub mod navigate;
pub mod parse;
pub mod traversal;

pub use arena::{Ancestors, Children, NodeId, Tree};
pub use binary::{BinaryNode, BinaryView};
pub use builder::{tree_from_bracket, TreeBuilder};
pub use error::{ParseError, TreeError};
pub use forest::{Forest, ForestStats, TreeId};
pub use label::{LabelId, LabelInterner};
pub use traversal::{Bfs, Positions, Postorder, Preorder};
