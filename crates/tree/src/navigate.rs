//! Higher-level navigation: lowest common ancestors, node paths and
//! subtree iterators — conveniences for applications built on the search
//! results (diff display, XPath-ish addressing, pattern anchoring).

use crate::arena::{NodeId, Tree};

impl Tree {
    /// The lowest common ancestor of `a` and `b` (either node itself when
    /// one is an ancestor of the other; the root in the worst case).
    pub fn lowest_common_ancestor(&self, a: NodeId, b: NodeId) -> NodeId {
        let depth_a = self.depth(a);
        let depth_b = self.depth(b);
        let (mut deep, mut shallow, mut gap) = if depth_a >= depth_b {
            (a, b, depth_a - depth_b)
        } else {
            (b, a, depth_b - depth_a)
        };
        while gap > 0 {
            deep = self.parent(deep).expect("depth accounting");
            gap -= 1;
        }
        while deep != shallow {
            deep = self.parent(deep).expect("roots coincide");
            shallow = self.parent(shallow).expect("roots coincide");
        }
        deep
    }

    /// Whether `ancestor` is `node` or a proper ancestor of it.
    pub fn is_ancestor_or_self(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut cursor = Some(node);
        while let Some(current) = cursor {
            if current == ancestor {
                return true;
            }
            cursor = self.parent(current);
        }
        false
    }

    /// The root-to-node path as child indices (empty for the root) — a
    /// stable structural address usable across structurally equal trees.
    pub fn path_from_root(&self, node: NodeId) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cursor = node;
        while let Some(parent) = self.parent(cursor) {
            path.push(self.sibling_index(cursor));
            cursor = parent;
        }
        path.reverse();
        path
    }

    /// Resolves a child-index path produced by [`Tree::path_from_root`].
    pub fn resolve_path(&self, path: &[usize]) -> Option<NodeId> {
        let mut cursor = self.root();
        for &index in path {
            cursor = self.child_at(cursor, index)?;
        }
        Some(cursor)
    }

    /// Clones the subtree rooted at `node` into a standalone tree.
    pub fn subtree_to_tree(&self, node: NodeId) -> Tree {
        let mut out = Tree::with_capacity(self.label(node), self.subtree_size(node));
        let mut stack: Vec<(NodeId, NodeId)> =
            self.children(node).map(|c| (c, out.root())).collect();
        stack.reverse();
        while let Some((old, new_parent)) = stack.pop() {
            let copy = out.add_child(new_parent, self.label(old));
            let before = stack.len();
            stack.extend(self.children(old).map(|c| (c, copy)));
            stack[before..].reverse();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelInterner;
    use crate::parse::bracket;

    fn tree() -> (Tree, LabelInterner) {
        let mut interner = LabelInterner::new();
        let t = bracket::parse(&mut interner, "a(b(c d(e)) f(g) h)").unwrap();
        (t, interner)
    }

    fn by_name(tree: &Tree, interner: &LabelInterner, name: &str) -> NodeId {
        let label = interner.get(name).unwrap();
        tree.preorder().find(|&n| tree.label(n) == label).unwrap()
    }

    #[test]
    fn lca_cases() {
        let (t, i) = tree();
        let (c, e, g, b, h) = (
            by_name(&t, &i, "c"),
            by_name(&t, &i, "e"),
            by_name(&t, &i, "g"),
            by_name(&t, &i, "b"),
            by_name(&t, &i, "h"),
        );
        assert_eq!(t.lowest_common_ancestor(c, e), b);
        assert_eq!(t.lowest_common_ancestor(e, g), t.root());
        assert_eq!(t.lowest_common_ancestor(b, e), b, "ancestor of the other");
        assert_eq!(t.lowest_common_ancestor(h, h), h, "self");
        assert_eq!(t.lowest_common_ancestor(t.root(), g), t.root());
    }

    #[test]
    fn ancestry_checks() {
        let (t, i) = tree();
        let (b, e, f) = (
            by_name(&t, &i, "b"),
            by_name(&t, &i, "e"),
            by_name(&t, &i, "f"),
        );
        assert!(t.is_ancestor_or_self(b, e));
        assert!(t.is_ancestor_or_self(t.root(), e));
        assert!(t.is_ancestor_or_self(e, e));
        assert!(!t.is_ancestor_or_self(f, e));
        assert!(!t.is_ancestor_or_self(e, b));
    }

    #[test]
    fn paths_roundtrip_for_every_node() {
        let (t, _) = tree();
        for node in t.preorder() {
            let path = t.path_from_root(node);
            assert_eq!(t.resolve_path(&path), Some(node));
        }
        assert_eq!(t.path_from_root(t.root()), Vec::<usize>::new());
        assert_eq!(t.resolve_path(&[9]), None);
        assert_eq!(t.resolve_path(&[0, 1, 0]), {
            let (t2, i2) = tree();
            Some(by_name(&t2, &i2, "e"))
        });
    }

    #[test]
    fn subtree_extraction() {
        let (t, i) = tree();
        let b = by_name(&t, &i, "b");
        let sub = t.subtree_to_tree(b);
        sub.validate().unwrap();
        assert_eq!(sub.len(), 4);
        assert_eq!(crate::parse::bracket::to_string(&sub, &i), "b(c d(e))");
        // Extracting the root clones the whole tree.
        let whole = t.subtree_to_tree(t.root());
        assert_eq!(whole, t);
    }
}
