//! Bracket notation for rooted, ordered, labeled trees.
//!
//! Grammar (whitespace between tokens is ignored):
//!
//! ```text
//! tree     := label children?
//! children := '(' tree+ ')'
//! label    := quoted | bare
//! bare     := one or more characters other than '(', ')', '\'', whitespace
//! quoted   := '\'' (any char; '\'' and '\\' escaped with '\\')* '\''
//! ```
//!
//! Examples: `a`, `a(b c)`, `article(author title year)`,
//! `'a label with spaces'('(weird)')`.

use crate::arena::Tree;
use crate::error::ParseError;
use crate::label::{LabelId, LabelInterner};

/// Parses a single tree in bracket notation.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem found.
///
/// # Examples
///
/// ```
/// use treesim_tree::{parse::bracket, LabelInterner};
///
/// let mut interner = LabelInterner::new();
/// let tree = bracket::parse(&mut interner, "a(b(c d) b e)").unwrap();
/// assert_eq!(tree.len(), 6);
/// assert_eq!(tree.degree(tree.root()), 3);
/// ```
pub fn parse(interner: &mut LabelInterner, input: &str) -> Result<Tree, ParseError> {
    let mut parser = Parser {
        interner,
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    if parser.at_end() {
        return Err(ParseError::Empty);
    }
    let tree = parser.tree()?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(ParseError::TrailingInput { offset: parser.pos });
    }
    Ok(tree)
}

/// Parses a whitespace/newline-separated sequence of trees (one dataset).
///
/// # Errors
///
/// Returns a [`ParseError`] for the first malformed tree.
pub fn parse_many(interner: &mut LabelInterner, input: &str) -> Result<Vec<Tree>, ParseError> {
    let mut parser = Parser {
        interner,
        bytes: input.as_bytes(),
        pos: 0,
    };
    let mut trees = Vec::new();
    loop {
        parser.skip_ws();
        if parser.at_end() {
            break;
        }
        trees.push(parser.tree()?);
    }
    Ok(trees)
}

/// Serializes a tree to bracket notation (inverse of [`parse`]).
pub fn to_string(tree: &Tree, interner: &LabelInterner) -> String {
    let mut out = String::with_capacity(tree.len() * 4);
    write_node(tree, interner, tree.root(), &mut out);
    out
}

fn write_node(tree: &Tree, interner: &LabelInterner, node: crate::arena::NodeId, out: &mut String) {
    write_label(interner.resolve(tree.label(node)), out);
    if !tree.is_leaf(node) {
        out.push('(');
        for (i, child) in tree.children(node).enumerate() {
            if i > 0 {
                out.push(' ');
            }
            write_node(tree, interner, child, out);
        }
        out.push(')');
    }
}

fn write_label(label: &str, out: &mut String) {
    let needs_quoting = label.is_empty()
        || label
            .chars()
            .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | '\''));
    if needs_quoting {
        out.push('\'');
        for c in label.chars() {
            if matches!(c, '\'' | '\\') {
                out.push('\\');
            }
            out.push(c);
        }
        out.push('\'');
    } else {
        out.push_str(label);
    }
}

struct Parser<'a> {
    interner: &'a mut LabelInterner,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn tree(&mut self) -> Result<Tree, ParseError> {
        let label = self.label()?;
        let mut tree = Tree::new(label);
        let root = tree.root();
        self.children(&mut tree, root)?;
        Ok(tree)
    }

    fn children(
        &mut self,
        tree: &mut Tree,
        parent: crate::arena::NodeId,
    ) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() != Some(b'(') {
            return Ok(());
        }
        self.pos += 1; // consume '('
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b')') => {
                    self.pos += 1;
                    return Ok(());
                }
                None => {
                    return Err(ParseError::UnexpectedEof {
                        expected: "')' or a child label",
                    })
                }
                Some(_) => {
                    let label = self.label()?;
                    let child = tree.add_child(parent, label);
                    self.children(tree, child)?;
                }
            }
        }
    }

    fn label(&mut self) -> Result<LabelId, ParseError> {
        self.skip_ws();
        match self.peek() {
            None => Err(ParseError::UnexpectedEof {
                expected: "a label",
            }),
            Some(b'\'') => self.quoted_label(),
            Some(b'(') | Some(b')') => Err(ParseError::UnexpectedChar {
                offset: self.pos,
                found: self.bytes[self.pos] as char,
                expected: "a label",
            }),
            Some(_) => self.bare_label(),
        }
    }

    fn bare_label(&mut self) -> Result<LabelId, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() || matches!(b, b'(' | b')' | b'\'') {
                break;
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError::BadLabel { offset: start })?;
        Ok(self.interner.intern(text))
    }

    fn quoted_label(&mut self) -> Result<LabelId, ParseError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut text = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(ParseError::UnexpectedEof {
                        expected: "closing quote",
                    })
                }
                Some(b'\'') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(escaped @ (b'\'' | b'\\')) => {
                            text.push(escaped as char);
                            self.pos += 1;
                        }
                        _ => return Err(ParseError::BadLabel { offset: start }),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let remainder = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| ParseError::BadLabel { offset: self.pos })?;
                    let c = remainder.chars().next().expect("peek returned Some");
                    text.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        Ok(self.interner.intern(&text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(spec: &str) -> String {
        let mut interner = LabelInterner::new();
        let tree = parse(&mut interner, spec).unwrap();
        tree.validate().unwrap();
        to_string(&tree, &interner)
    }

    #[test]
    fn single_node() {
        assert_eq!(roundtrip("a"), "a");
    }

    #[test]
    fn nested() {
        assert_eq!(roundtrip("a(b(c d) b e)"), "a(b(c d) b e)");
    }

    #[test]
    fn whitespace_insensitive() {
        assert_eq!(roundtrip("  a ( b(  c )\n d )  "), "a(b(c) d)");
    }

    #[test]
    fn quoted_labels() {
        assert_eq!(
            roundtrip("'a b'('x(y)' 'it\\'s')"),
            "'a b'('x(y)' 'it\\'s')"
        );
    }

    #[test]
    fn unicode_labels() {
        assert_eq!(roundtrip("α(β γ)"), "α(β γ)");
    }

    #[test]
    fn empty_input_errors() {
        let mut interner = LabelInterner::new();
        assert_eq!(parse(&mut interner, "   "), Err(ParseError::Empty));
    }

    #[test]
    fn trailing_input_errors() {
        let mut interner = LabelInterner::new();
        assert!(matches!(
            parse(&mut interner, "a b"),
            Err(ParseError::TrailingInput { .. })
        ));
    }

    #[test]
    fn unclosed_children_errors() {
        let mut interner = LabelInterner::new();
        assert!(matches!(
            parse(&mut interner, "a(b"),
            Err(ParseError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn stray_paren_errors() {
        let mut interner = LabelInterner::new();
        assert!(matches!(
            parse(&mut interner, "(a)"),
            Err(ParseError::UnexpectedChar { .. })
        ));
    }

    #[test]
    fn unterminated_quote_errors() {
        let mut interner = LabelInterner::new();
        assert!(matches!(
            parse(&mut interner, "'abc"),
            Err(ParseError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_escape_errors() {
        let mut interner = LabelInterner::new();
        assert!(matches!(
            parse(&mut interner, "'a\\x'"),
            Err(ParseError::BadLabel { .. })
        ));
    }

    #[test]
    fn parse_many_reads_dataset() {
        let mut interner = LabelInterner::new();
        let trees = parse_many(&mut interner, "a(b)\n a(c)\n\n a").unwrap();
        assert_eq!(trees.len(), 3);
        assert_eq!(trees[0].len(), 2);
        assert_eq!(trees[2].len(), 1);
    }

    #[test]
    fn parse_many_empty_is_empty() {
        let mut interner = LabelInterner::new();
        assert!(parse_many(&mut interner, " \n ").unwrap().is_empty());
    }

    #[test]
    fn shared_labels_intern_to_same_ids() {
        let mut interner = LabelInterner::new();
        let t1 = parse(&mut interner, "a(b)").unwrap();
        let t2 = parse(&mut interner, "b(a)").unwrap();
        assert_eq!(
            t1.label(t1.root()),
            t2.label(t2.first_child(t2.root()).unwrap())
        );
    }

    #[test]
    fn empty_label_quoted_roundtrip() {
        assert_eq!(roundtrip("''(a)"), "''(a)");
    }
}
