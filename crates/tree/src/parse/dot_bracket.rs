//! Dot-bracket notation for RNA secondary structures.
//!
//! The paper motivates tree similarity with RNA secondary structures: a
//! folded molecule is naturally a rooted ordered tree. In dot-bracket
//! notation, `(`/`)` delimit a base pair (an internal `pair` node) and `.`
//! is an unpaired base (a `base` leaf); the whole structure hangs under a
//! synthetic `rna` root.
//!
//! ```text
//! ((..((...))..))   ⇒   rna(pair(pair(base base pair(base base base) base base)))
//! ```

use crate::arena::{NodeId, Tree};
use crate::error::ParseError;
use crate::label::LabelInterner;

/// Label used for the synthetic root.
pub const ROOT_LABEL: &str = "rna";
/// Label used for paired positions.
pub const PAIR_LABEL: &str = "pair";
/// Label used for unpaired bases.
pub const BASE_LABEL: &str = "base";

/// Parses a dot-bracket string into its structure tree.
///
/// # Errors
///
/// Returns [`ParseError::UnexpectedChar`] for symbols outside `(.)` and
/// [`ParseError::UnexpectedEof`] / [`ParseError::TrailingInput`] for
/// unbalanced brackets.
///
/// # Examples
///
/// ```
/// use treesim_tree::{parse::dot_bracket, LabelInterner};
///
/// let mut interner = LabelInterner::new();
/// let tree = dot_bracket::parse(&mut interner, "((..))").unwrap();
/// assert_eq!(tree.len(), 5); // rna, pair, pair, base, base
/// assert_eq!(tree.height(), 4);
/// ```
pub fn parse(interner: &mut LabelInterner, structure: &str) -> Result<Tree, ParseError> {
    let root_label = interner.intern(ROOT_LABEL);
    let pair = interner.intern(PAIR_LABEL);
    let base = interner.intern(BASE_LABEL);
    let mut tree = Tree::with_capacity(root_label, structure.len() + 1);
    let mut stack: Vec<NodeId> = vec![tree.root()];
    for (offset, symbol) in structure.char_indices() {
        let top = *stack.last().expect("stack holds at least the root");
        match symbol {
            '(' => stack.push(tree.add_child(top, pair)),
            ')' => {
                if stack.len() == 1 {
                    return Err(ParseError::TrailingInput { offset });
                }
                stack.pop();
            }
            '.' => {
                tree.add_child(top, base);
            }
            other if other.is_whitespace() => {}
            other => {
                return Err(ParseError::UnexpectedChar {
                    offset,
                    found: other,
                    expected: "'(', ')' or '.'",
                })
            }
        }
    }
    if stack.len() != 1 {
        return Err(ParseError::UnexpectedEof {
            expected: "closing ')'",
        });
    }
    Ok(tree)
}

/// Serializes a structure tree back to dot-bracket notation (inverse of
/// [`parse`] for trees it produced).
pub fn to_string(tree: &Tree, interner: &LabelInterner) -> String {
    let pair = interner.get(PAIR_LABEL);
    let mut out = String::new();
    fn walk(tree: &Tree, node: NodeId, pair: Option<crate::label::LabelId>, out: &mut String) {
        for child in tree.children(node) {
            if Some(tree.label(child)) == pair {
                out.push('(');
                walk(tree, child, pair, out);
                out.push(')');
            } else {
                out.push('.');
            }
        }
    }
    walk(tree, tree.root(), pair, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(structure: &str) -> String {
        let mut interner = LabelInterner::new();
        let tree = parse(&mut interner, structure).unwrap();
        tree.validate().unwrap();
        to_string(&tree, &interner)
    }

    #[test]
    fn simple_structures_roundtrip() {
        for s in [
            "",
            "...",
            "((..))",
            "((((....))))",
            "((..((...))..((...))..))",
            "(((..(((...)))..)))",
        ] {
            assert_eq!(roundtrip(s), s);
        }
    }

    #[test]
    fn node_counts() {
        let mut interner = LabelInterner::new();
        let tree = parse(&mut interner, "(.)").unwrap();
        // rna + pair + base
        assert_eq!(tree.len(), 3);
        let hairpin = parse(&mut interner, "((((....))))").unwrap();
        assert_eq!(hairpin.len(), 1 + 4 + 4);
    }

    #[test]
    fn whitespace_is_ignored() {
        assert_eq!(roundtrip("(( .. ))".replace(' ', "").as_str()), "((..))");
        let mut interner = LabelInterner::new();
        let tree = parse(&mut interner, "(( .. ))").unwrap();
        assert_eq!(to_string(&tree, &interner), "((..))");
    }

    #[test]
    fn unbalanced_structures_error() {
        let mut interner = LabelInterner::new();
        assert!(matches!(
            parse(&mut interner, "(("),
            Err(ParseError::UnexpectedEof { .. })
        ));
        assert!(matches!(
            parse(&mut interner, "())"),
            Err(ParseError::TrailingInput { .. })
        ));
        assert!(matches!(
            parse(&mut interner, "(x)"),
            Err(ParseError::UnexpectedChar { .. })
        ));
    }

    #[test]
    fn similar_structures_have_small_edit_distance_shape() {
        // Not a distance test (that lives in treesim-edit), just that small
        // structural tweaks produce small tree differences.
        let mut interner = LabelInterner::new();
        let a = parse(&mut interner, "((((....))))").unwrap();
        let b = parse(&mut interner, "((((.....))))").unwrap();
        assert_eq!(b.len(), a.len() + 1);
    }
}
