//! Parsers producing [`crate::Tree`]s from textual formats.
//!
//! * [`bracket`] — compact bracket notation `a(b(c) d)` used by tests,
//!   examples and the CLI;
//! * [`xml`] — a minimal, dependency-free XML subset parser sufficient for
//!   DBLP-style bibliographic records;
//! * [`dot_bracket`] — RNA secondary structures in dot-bracket notation.

pub mod bracket;
pub mod dot_bracket;
pub mod xml;
