//! A minimal, dependency-free XML subset parser producing labeled trees.
//!
//! Supported: elements, attributes (optionally turned into child nodes),
//! text content (optionally turned into leaf nodes), self-closing tags,
//! comments, processing instructions, XML declarations, CDATA sections and
//! the five predefined entities plus decimal/hex character references.
//!
//! Not supported (not needed for DBLP-style data): DTDs with internal
//! subsets beyond skipping, namespaces (prefixes are kept verbatim in the
//! label) and full well-formedness validation.

use crate::arena::{NodeId, Tree};
use crate::error::ParseError;
use crate::label::LabelInterner;

/// Controls how XML constructs map to tree nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XmlOptions {
    /// Create a leaf node per non-whitespace text run, labeled with the
    /// (entity-decoded, whitespace-trimmed) text.
    pub include_text: bool,
    /// Create a child node per attribute, labeled `@name`, with the value as
    /// a leaf child when `include_text` is set.
    pub include_attributes: bool,
}

impl XmlOptions {
    /// Structure-only trees: element tags become labels, text and attributes
    /// are dropped. This is the common setting for structural similarity.
    pub const STRUCTURE_ONLY: XmlOptions = XmlOptions {
        include_text: false,
        include_attributes: false,
    };

    /// Elements and text content (the shape used for DBLP records, where the
    /// content of `author`, `title`, … carries label information).
    pub const WITH_TEXT: XmlOptions = XmlOptions {
        include_text: true,
        include_attributes: false,
    };

    /// Everything: elements, attributes and text.
    pub const FULL: XmlOptions = XmlOptions {
        include_text: true,
        include_attributes: true,
    };
}

impl Default for XmlOptions {
    fn default() -> Self {
        XmlOptions::WITH_TEXT
    }
}

/// Parses one XML document into a tree rooted at its document element.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
///
/// # Examples
///
/// ```
/// use treesim_tree::{parse::xml, LabelInterner};
///
/// let mut interner = LabelInterner::new();
/// let doc = "<article key='x'><author>A. U. Thor</author><title>T</title></article>";
/// let tree = xml::parse(&mut interner, doc, xml::XmlOptions::WITH_TEXT).unwrap();
/// assert_eq!(interner.resolve(tree.label(tree.root())), "article");
/// assert_eq!(tree.len(), 5); // article, author, text, title, text
/// ```
pub fn parse(
    interner: &mut LabelInterner,
    input: &str,
    options: XmlOptions,
) -> Result<Tree, ParseError> {
    let mut parser = XmlParser {
        interner,
        bytes: input.as_bytes(),
        pos: 0,
        options,
    };
    parser.skip_misc()?;
    if parser.at_end() {
        return Err(ParseError::Empty);
    }
    let tree = parser.element(None)?.expect("element after skip_misc");
    parser.skip_misc()?;
    if !parser.at_end() {
        return Err(ParseError::TrailingInput { offset: parser.pos });
    }
    Ok(tree)
}

/// Parses a concatenation of XML documents (e.g., one DBLP record per line).
///
/// # Errors
///
/// Returns a [`ParseError`] for the first malformed document.
pub fn parse_many(
    interner: &mut LabelInterner,
    input: &str,
    options: XmlOptions,
) -> Result<Vec<Tree>, ParseError> {
    let mut parser = XmlParser {
        interner,
        bytes: input.as_bytes(),
        pos: 0,
        options,
    };
    let mut trees = Vec::new();
    loop {
        parser.skip_misc()?;
        if parser.at_end() {
            break;
        }
        trees.push(parser.element(None)?.expect("element after skip_misc"));
    }
    Ok(trees)
}

/// Serializes a tree back to XML. Nodes labeled `@name` become attributes of
/// their parent when their only child is a leaf (or they are leaves); other
/// leaves parsed from text (heuristically: any leaf whose label contains
/// whitespace or that the caller created from text) are emitted as element
/// content only when `options.include_text` was used — this writer simply
/// emits every node as an element, which is lossless for
/// [`XmlOptions::STRUCTURE_ONLY`] trees and a faithful structural rendering
/// otherwise.
pub fn to_string(tree: &Tree, interner: &LabelInterner) -> String {
    let mut out = String::with_capacity(tree.len() * 16);
    write_element(tree, interner, tree.root(), &mut out);
    out
}

fn write_element(tree: &Tree, interner: &LabelInterner, node: NodeId, out: &mut String) {
    let label = interner.resolve(tree.label(node));
    out.push('<');
    push_escaped(label, out);
    if tree.is_leaf(node) {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for child in tree.children(node) {
        write_element(tree, interner, child, out);
    }
    out.push_str("</");
    push_escaped(label, out);
    out.push('>');
}

fn push_escaped(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

/// Serializes a tree to XML, re-interpreting the conventions of
/// [`XmlOptions::WITH_TEXT`] / [`XmlOptions::FULL`] parsing:
///
/// * a leaf whose label is **not** a well-formed XML element name (spaces,
///   leading digits, slashes, …) is emitted as *text content* of its
///   parent;
/// * a node labeled `@name` is emitted as an *attribute* of its parent,
///   its value being its single leaf child's label (or empty);
/// * everything else is an element.
///
/// `parse(to_string_with_text(t), WITH_TEXT)` reproduces `t` whenever `t`
/// came from `parse(_, WITH_TEXT)` and its text labels are not themselves
/// valid element names (e.g. DBLP author/title/year values).
pub fn to_string_with_text(tree: &Tree, interner: &LabelInterner) -> String {
    let mut out = String::with_capacity(tree.len() * 16);
    write_element_with_text(tree, interner, tree.root(), &mut out);
    out
}

fn is_xml_name(text: &str) -> bool {
    let mut chars = text.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'))
}

fn write_element_with_text(tree: &Tree, interner: &LabelInterner, node: NodeId, out: &mut String) {
    let label = interner.resolve(tree.label(node));
    out.push('<');
    out.push_str(label);
    // Attributes first: children labeled @name.
    let mut content_children = Vec::new();
    for child in tree.children(node) {
        let child_label = interner.resolve(tree.label(child));
        if let Some(name) = child_label.strip_prefix('@') {
            out.push(' ');
            out.push_str(name);
            out.push_str("=\"");
            if let Some(value) = tree.first_child(child) {
                push_escaped(interner.resolve(tree.label(value)), out);
            }
            out.push('"');
        } else {
            content_children.push(child);
        }
    }
    if content_children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for child in content_children {
        let child_label = interner.resolve(tree.label(child));
        if tree.is_leaf(child) && !is_xml_name(child_label) {
            push_escaped(child_label, out);
        } else {
            write_element_with_text(tree, interner, child, out);
        }
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

struct XmlParser<'a> {
    interner: &'a mut LabelInterner,
    bytes: &'a [u8],
    pos: usize,
    options: XmlOptions,
}

impl XmlParser<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.bytes[self.pos..].starts_with(prefix.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, PIs, XML declarations and DOCTYPE.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                // Skip to the matching '>' (no internal-subset nesting).
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, terminator: &str) -> Result<(), ParseError> {
        let haystack = &self.bytes[self.pos..];
        match find_subslice(haystack, terminator.as_bytes()) {
            Some(offset) => {
                self.pos += offset + terminator.len();
                Ok(())
            }
            None => Err(ParseError::UnexpectedEof {
                expected: "construct terminator",
            }),
        }
    }

    /// Parses one element. When `into` is `Some((tree, parent))`, attaches
    /// the element under `parent`; otherwise creates and returns a new tree.
    fn element(
        &mut self,
        mut into: Option<(&mut Tree, NodeId)>,
    ) -> Result<Option<Tree>, ParseError> {
        if self.peek() != Some(b'<') {
            return Err(ParseError::UnexpectedChar {
                offset: self.pos,
                found: self.peek().map_or('\0', |b| b as char),
                expected: "'<'",
            });
        }
        self.pos += 1;
        let name = self.name()?;
        let label = self.interner.intern(&name);

        let mut owned: Option<Tree> = None;
        let node = match &mut into {
            Some((tree, parent)) => tree.add_child(*parent, label),
            None => {
                let tree = Tree::new(label);
                let root = tree.root();
                owned = Some(tree);
                root
            }
        };
        // A local mutable borrow resolving to whichever tree we're filling.
        macro_rules! tree_mut {
            () => {
                match (&mut owned, &mut into) {
                    (Some(t), _) => &mut *t,
                    (None, Some((t, _))) => &mut **t,
                    (None, None) => unreachable!(),
                }
            };
        }

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        return Ok(owned);
                    }
                    return Err(ParseError::UnexpectedChar {
                        offset: self.pos,
                        found: self.peek().map_or('\0', |b| b as char),
                        expected: "'>' after '/'",
                    });
                }
                Some(_) => {
                    let (attr_name, attr_value) = self.attribute()?;
                    if self.options.include_attributes {
                        let tree = tree_mut!();
                        let attr_label = self.interner.intern(&format!("@{attr_name}"));
                        let attr_node = tree.add_child(node, attr_label);
                        if self.options.include_text && !attr_value.is_empty() {
                            let value_label = self.interner.intern(&attr_value);
                            tree.add_child(attr_node, value_label);
                        }
                    }
                }
                None => {
                    return Err(ParseError::UnexpectedEof {
                        expected: "'>' or attribute",
                    })
                }
            }
        }

        // Content.
        loop {
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                let start = self.pos + "<![CDATA[".len();
                let haystack = &self.bytes[start..];
                let end = find_subslice(haystack, b"]]>")
                    .ok_or(ParseError::UnexpectedEof { expected: "']]>'" })?;
                let text = std::str::from_utf8(&haystack[..end])
                    .map_err(|_| ParseError::BadLabel { offset: start })?
                    .trim()
                    .to_owned();
                self.pos = start + end + 3;
                if self.options.include_text && !text.is_empty() {
                    let tree = tree_mut!();
                    let text_label = self.interner.intern(&text);
                    tree.add_child(node, text_label);
                }
                continue;
            }
            if self.starts_with("<?") {
                self.skip_until("?>")?;
                continue;
            }
            if self.starts_with("</") {
                let close_offset = self.pos;
                self.pos += 2;
                let close_name = self.name()?;
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(ParseError::UnexpectedChar {
                        offset: self.pos,
                        found: self.peek().map_or('\0', |b| b as char),
                        expected: "'>' in closing tag",
                    });
                }
                self.pos += 1;
                if close_name != name {
                    return Err(ParseError::MismatchedTag {
                        offset: close_offset,
                        expected: name,
                        found: close_name,
                    });
                }
                return Ok(owned);
            }
            match self.peek() {
                Some(b'<') => {
                    let tree = tree_mut!();
                    self.element(Some((tree, node)))?;
                }
                Some(_) => {
                    let text = self.text_run()?;
                    if self.options.include_text && !text.is_empty() {
                        let tree = tree_mut!();
                        let text_label = self.interner.intern(&text);
                        tree.add_child(node, text_label);
                    }
                }
                None => {
                    return Err(ParseError::UnexpectedEof {
                        expected: "element content or closing tag",
                    })
                }
            }
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() || matches!(b, b'>' | b'/' | b'=') {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(ParseError::BadLabel { offset: start });
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map(str::to_owned)
            .map_err(|_| ParseError::BadLabel { offset: start })
    }

    fn attribute(&mut self) -> Result<(String, String), ParseError> {
        let name = self.name()?;
        self.skip_ws();
        if self.peek() != Some(b'=') {
            // Attribute without value (HTML-ish); tolerate.
            return Ok((name, String::new()));
        }
        self.pos += 1;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => {
                return Err(ParseError::UnexpectedChar {
                    offset: self.pos,
                    found: self.peek().map_or('\0', |b| b as char),
                    expected: "quoted attribute value",
                })
            }
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                break;
            }
            self.pos += 1;
        }
        if self.at_end() {
            return Err(ParseError::UnexpectedEof {
                expected: "closing attribute quote",
            });
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError::BadLabel { offset: start })?;
        let value = decode_entities(raw, start)?;
        self.pos += 1; // closing quote
        Ok((name, value))
    }

    fn text_run(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError::BadLabel { offset: start })?;
        Ok(decode_entities(raw, start)?.trim().to_owned())
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

fn decode_entities(raw: &str, base_offset: usize) -> Result<String, ParseError> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    let mut consumed = 0usize;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or(ParseError::BadEntity {
            offset: base_offset + consumed + amp,
        })?;
        let entity = &after[..semi];
        let decoded: String = match entity {
            "lt" => "<".into(),
            "gt" => ">".into(),
            "amp" => "&".into(),
            "quot" => "\"".into(),
            "apos" => "'".into(),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code =
                    u32::from_str_radix(&entity[2..], 16).map_err(|_| ParseError::BadEntity {
                        offset: base_offset + consumed + amp,
                    })?;
                char::from_u32(code)
                    .ok_or(ParseError::BadEntity {
                        offset: base_offset + consumed + amp,
                    })?
                    .to_string()
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().map_err(|_| ParseError::BadEntity {
                    offset: base_offset + consumed + amp,
                })?;
                char::from_u32(code)
                    .ok_or(ParseError::BadEntity {
                        offset: base_offset + consumed + amp,
                    })?
                    .to_string()
            }
            _ => {
                return Err(ParseError::BadEntity {
                    offset: base_offset + consumed + amp,
                })
            }
        };
        out.push_str(&decoded);
        let advance = amp + 1 + semi + 1;
        consumed += advance;
        rest = &rest[advance..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(doc: &str, options: XmlOptions) -> (Tree, LabelInterner) {
        let mut interner = LabelInterner::new();
        let tree = parse(&mut interner, doc, options).unwrap();
        tree.validate().unwrap();
        (tree, interner)
    }

    #[test]
    fn structure_only_drops_text_and_attributes() {
        let (tree, interner) = parse_one(
            "<article key='1'><author>Jane Doe</author><title>Trees</title></article>",
            XmlOptions::STRUCTURE_ONLY,
        );
        assert_eq!(tree.len(), 3);
        let labels: Vec<_> = tree
            .preorder()
            .map(|n| interner.resolve(tree.label(n)).to_owned())
            .collect();
        assert_eq!(labels, vec!["article", "author", "title"]);
    }

    #[test]
    fn with_text_creates_text_leaves() {
        let (tree, interner) = parse_one(
            "<article><author>Jane Doe</author></article>",
            XmlOptions::WITH_TEXT,
        );
        assert_eq!(tree.len(), 3);
        let author = tree.first_child(tree.root()).unwrap();
        let text = tree.first_child(author).unwrap();
        assert_eq!(interner.resolve(tree.label(text)), "Jane Doe");
    }

    #[test]
    fn full_options_include_attributes() {
        let (tree, interner) = parse_one(
            "<article key=\"conf/x\" mdate='2004-01-01'/>",
            XmlOptions::FULL,
        );
        assert_eq!(tree.degree(tree.root()), 2);
        let attr = tree.first_child(tree.root()).unwrap();
        assert_eq!(interner.resolve(tree.label(attr)), "@key");
        let value = tree.first_child(attr).unwrap();
        assert_eq!(interner.resolve(tree.label(value)), "conf/x");
    }

    #[test]
    fn self_closing_and_nested_mix() {
        let (tree, _) = parse_one("<a><b/><c><d/></c><b></b></a>", XmlOptions::STRUCTURE_ONLY);
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.degree(tree.root()), 3);
    }

    #[test]
    fn declaration_comment_doctype_skipped() {
        let doc = "<?xml version=\"1.0\"?><!DOCTYPE dblp><!-- hi --><a><!-- inner --><b/></a>";
        let (tree, _) = parse_one(doc, XmlOptions::STRUCTURE_ONLY);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn cdata_becomes_text() {
        let (tree, interner) = parse_one("<t><![CDATA[x < y & z]]></t>", XmlOptions::WITH_TEXT);
        let text = tree.first_child(tree.root()).unwrap();
        assert_eq!(interner.resolve(tree.label(text)), "x < y & z");
    }

    #[test]
    fn entities_decoded() {
        let (tree, interner) =
            parse_one("<t>&lt;a&gt; &amp; &#65;&#x42;</t>", XmlOptions::WITH_TEXT);
        let text = tree.first_child(tree.root()).unwrap();
        assert_eq!(interner.resolve(tree.label(text)), "<a> & AB");
    }

    #[test]
    fn mismatched_tag_errors() {
        let mut interner = LabelInterner::new();
        assert!(matches!(
            parse(&mut interner, "<a><b></a></b>", XmlOptions::STRUCTURE_ONLY),
            Err(ParseError::MismatchedTag { .. })
        ));
    }

    #[test]
    fn unterminated_document_errors() {
        let mut interner = LabelInterner::new();
        assert!(matches!(
            parse(&mut interner, "<a><b/>", XmlOptions::STRUCTURE_ONLY),
            Err(ParseError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_entity_errors() {
        let mut interner = LabelInterner::new();
        assert!(matches!(
            parse(&mut interner, "<a>&bogus;</a>", XmlOptions::WITH_TEXT),
            Err(ParseError::BadEntity { .. })
        ));
    }

    #[test]
    fn empty_input_errors() {
        let mut interner = LabelInterner::new();
        assert_eq!(
            parse(&mut interner, "  ", XmlOptions::STRUCTURE_ONLY),
            Err(ParseError::Empty)
        );
    }

    #[test]
    fn trailing_content_errors() {
        let mut interner = LabelInterner::new();
        assert!(matches!(
            parse(&mut interner, "<a/><b/>", XmlOptions::STRUCTURE_ONLY),
            Err(ParseError::TrailingInput { .. })
        ));
    }

    #[test]
    fn parse_many_reads_record_stream() {
        let mut interner = LabelInterner::new();
        let docs = "<article><author/></article>\n<inproceedings><title/></inproceedings>";
        let trees = parse_many(&mut interner, docs, XmlOptions::STRUCTURE_ONLY).unwrap();
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].len(), 2);
    }

    #[test]
    fn writer_roundtrip_structure_only() {
        let doc = "<a><b/><c><d/></c></a>";
        let mut interner = LabelInterner::new();
        let tree = parse(&mut interner, doc, XmlOptions::STRUCTURE_ONLY).unwrap();
        let emitted = to_string(&tree, &interner);
        let tree2 = parse(&mut interner, &emitted, XmlOptions::STRUCTURE_ONLY).unwrap();
        assert_eq!(tree, tree2);
    }

    #[test]
    fn text_aware_writer_roundtrips_with_text_trees() {
        let docs = [
            "<article><author>Jane Doe</author><title>graph mining 101</title><year>1999</year></article>",
            "<t>x  y</t>",
            "<a><b/><c>12-34</c></a>",
        ];
        let mut interner = LabelInterner::new();
        for doc in docs {
            let tree = parse(&mut interner, doc, XmlOptions::WITH_TEXT).unwrap();
            let emitted = to_string_with_text(&tree, &interner);
            let reparsed = parse(&mut interner, &emitted, XmlOptions::WITH_TEXT).unwrap();
            assert_eq!(reparsed, tree, "round trip failed for {doc}");
        }
    }

    #[test]
    fn text_aware_writer_roundtrips_attributes() {
        let doc = "<article key=\"conf/x\" mdate=\"2004-01-01\"><author>A B</author></article>";
        let mut interner = LabelInterner::new();
        let tree = parse(&mut interner, doc, XmlOptions::FULL).unwrap();
        let emitted = to_string_with_text(&tree, &interner);
        let reparsed = parse(&mut interner, &emitted, XmlOptions::FULL).unwrap();
        assert_eq!(reparsed, tree);
    }

    #[test]
    fn text_with_specials_is_escaped() {
        let mut interner = LabelInterner::new();
        let tree = parse(
            &mut interner,
            "<t>a &lt;&amp;&gt; b</t>",
            XmlOptions::WITH_TEXT,
        )
        .unwrap();
        let emitted = to_string_with_text(&tree, &interner);
        assert!(emitted.contains("&lt;"));
        assert!(emitted.contains("&amp;"));
        let reparsed = parse(&mut interner, &emitted, XmlOptions::WITH_TEXT).unwrap();
        assert_eq!(reparsed, tree);
    }

    #[test]
    fn whitespace_only_text_ignored() {
        let (tree, _) = parse_one("<a>\n  <b/>\n</a>", XmlOptions::WITH_TEXT);
        assert_eq!(tree.len(), 2);
    }
}
