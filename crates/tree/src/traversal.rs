//! Tree traversals and position numbering.
//!
//! The positional binary branch distance of the paper (§4.2) keys each
//! branch occurrence by the 1-based position of its root node in the
//! preorder and postorder traversal sequences of the original tree;
//! [`Positions`] computes both numberings in one pass.

use crate::arena::{NodeId, Tree};

impl Tree {
    /// Depth-first, left-to-right (preorder) iterator over live nodes.
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![self.root()],
        }
    }

    /// Postorder (children before parent, left to right) iterator.
    pub fn postorder(&self) -> Postorder<'_> {
        Postorder {
            tree: self,
            stack: vec![(self.root(), false)],
        }
    }

    /// Breadth-first (level order) iterator.
    pub fn bfs(&self) -> Bfs<'_> {
        Bfs {
            tree: self,
            queue: std::collections::VecDeque::from([self.root()]),
        }
    }

    /// Preorder iterator over the subtree rooted at `root`.
    pub fn preorder_from(&self, root: NodeId) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![root],
        }
    }

    /// Computes the 1-based preorder and postorder position of every node.
    pub fn positions(&self) -> Positions {
        Positions::new(self)
    }
}

/// Preorder iterator; see [`Tree::preorder`].
#[derive(Debug, Clone)]
pub struct Preorder<'a> {
    tree: &'a Tree,
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let before = self.stack.len();
        for child in self.tree.children(id) {
            self.stack.push(child);
        }
        self.stack[before..].reverse();
        Some(id)
    }
}

/// Postorder iterator; see [`Tree::postorder`].
#[derive(Debug, Clone)]
pub struct Postorder<'a> {
    tree: &'a Tree,
    stack: Vec<(NodeId, bool)>,
}

impl Iterator for Postorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while let Some((id, expanded)) = self.stack.pop() {
            if expanded {
                return Some(id);
            }
            self.stack.push((id, true));
            let before = self.stack.len();
            for child in self.tree.children(id) {
                self.stack.push((child, false));
            }
            self.stack[before..].reverse();
        }
        None
    }
}

/// Breadth-first iterator; see [`Tree::bfs`].
#[derive(Debug, Clone)]
pub struct Bfs<'a> {
    tree: &'a Tree,
    queue: std::collections::VecDeque<NodeId>,
}

impl Iterator for Bfs<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.queue.pop_front()?;
        self.queue.extend(self.tree.children(id));
        Some(id)
    }
}

/// 1-based preorder and postorder numbering of a tree's nodes.
///
/// Indexed by [`NodeId`]; positions of nodes deleted from the tree are 0.
#[derive(Debug, Clone)]
pub struct Positions {
    pre: Vec<u32>,
    post: Vec<u32>,
}

impl Positions {
    fn new(tree: &Tree) -> Self {
        let capacity = tree.arena_len();
        let mut pre = vec![0u32; capacity];
        let mut post = vec![0u32; capacity];
        for (i, id) in tree.preorder().enumerate() {
            pre[id.index()] = i as u32 + 1;
        }
        for (i, id) in tree.postorder().enumerate() {
            post[id.index()] = i as u32 + 1;
        }
        Positions { pre, post }
    }

    /// 1-based preorder position of `id`.
    #[inline]
    pub fn pre(&self, id: NodeId) -> u32 {
        self.pre[id.index()]
    }

    /// 1-based postorder position of `id`.
    #[inline]
    pub fn post(&self, id: NodeId) -> u32 {
        self.post[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelInterner;

    /// Fig. 1 tree T1: a(b(c(d)) b e).
    fn t1() -> (Tree, LabelInterner) {
        let mut interner = LabelInterner::new();
        let (a, b, c, d, e) = (
            interner.intern("a"),
            interner.intern("b"),
            interner.intern("c"),
            interner.intern("d"),
            interner.intern("e"),
        );
        let mut t = Tree::new(a);
        let root = t.root();
        let nb1 = t.add_child(root, b);
        t.add_child(root, b);
        t.add_child(root, e);
        let nc = t.add_child(nb1, c);
        t.add_child(nc, d);
        (t, interner)
    }

    #[test]
    fn preorder_visits_parent_first() {
        let (t, interner) = t1();
        let labels: Vec<_> = t
            .preorder()
            .map(|n| interner.resolve(t.label(n)).to_owned())
            .collect();
        assert_eq!(labels, vec!["a", "b", "c", "d", "b", "e"]);
    }

    #[test]
    fn postorder_visits_children_first() {
        let (t, interner) = t1();
        let labels: Vec<_> = t
            .postorder()
            .map(|n| interner.resolve(t.label(n)).to_owned())
            .collect();
        assert_eq!(labels, vec!["d", "c", "b", "b", "e", "a"]);
    }

    #[test]
    fn bfs_visits_level_by_level() {
        let (t, interner) = t1();
        let labels: Vec<_> = t
            .bfs()
            .map(|n| interner.resolve(t.label(n)).to_owned())
            .collect();
        assert_eq!(labels, vec!["a", "b", "b", "e", "c", "d"]);
    }

    #[test]
    fn traversals_cover_all_nodes_once() {
        let (t, _) = t1();
        assert_eq!(t.preorder().count(), t.len());
        assert_eq!(t.postorder().count(), t.len());
        assert_eq!(t.bfs().count(), t.len());
    }

    #[test]
    fn traversals_skip_deleted_nodes() {
        let (mut t, _) = t1();
        let b1 = t.first_child(t.root()).unwrap();
        t.remove_node(b1).unwrap();
        assert_eq!(t.preorder().count(), 5);
        assert_eq!(t.postorder().count(), 5);
        assert_eq!(t.bfs().count(), 5);
    }

    #[test]
    fn positions_are_one_based_and_consistent() {
        let (t, _) = t1();
        let pos = t.positions();
        let root = t.root();
        assert_eq!(pos.pre(root), 1);
        assert_eq!(pos.post(root), t.len() as u32);
        // Every preorder position is distinct and in 1..=n.
        let mut seen: Vec<u32> = t.preorder().map(|n| pos.pre(n)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1..=t.len() as u32).collect::<Vec<_>>());
        let mut seen_post: Vec<u32> = t.preorder().map(|n| pos.post(n)).collect();
        seen_post.sort_unstable();
        assert_eq!(seen_post, (1..=t.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn ancestor_has_smaller_pre_and_larger_post() {
        let (t, _) = t1();
        let pos = t.positions();
        for node in t.preorder() {
            for anc in t.ancestors(node) {
                assert!(pos.pre(anc) < pos.pre(node));
                assert!(pos.post(anc) > pos.post(node));
            }
        }
    }

    #[test]
    fn preorder_from_subtree() {
        let (t, interner) = t1();
        let b1 = t.first_child(t.root()).unwrap();
        let labels: Vec<_> = t
            .preorder_from(b1)
            .map(|n| interner.resolve(t.label(n)).to_owned())
            .collect();
        assert_eq!(labels, vec!["b", "c", "d"]);
    }
}
