//! Fuzz-style property tests: the binary codecs must reject arbitrary and
//! corrupted input with an error — never panic, never loop.

use proptest::prelude::*;
use treesim_tree::codec::{decode_forest, encode_forest};
use treesim_tree::Forest;

fn sample_forest() -> Forest {
    let mut forest = Forest::new();
    forest.parse_bracket("a(b(c d) e)").unwrap();
    forest.parse_bracket("x(y)").unwrap();
    forest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_forest(&bytes);
    }

    /// Arbitrary bytes with a valid magic prefix never panic either.
    #[test]
    fn magic_prefixed_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut input = b"TSF1".to_vec();
        input.extend(bytes);
        let _ = decode_forest(&input);
    }

    /// Single-byte corruption of a valid file either decodes to *some*
    /// valid forest or errors — never panics.
    #[test]
    fn corrupted_valid_file_never_panics(position in 0usize..64, value in any::<u8>()) {
        let mut bytes = encode_forest(&sample_forest()).to_vec();
        let index = position % bytes.len();
        bytes[index] = value;
        if let Ok(forest) = decode_forest(&bytes) {
            for (_, tree) in forest.iter() {
                tree.validate().unwrap();
            }
        }
    }

    /// Truncation at any point errors cleanly.
    #[test]
    fn truncation_never_panics(cut in 0usize..64) {
        let bytes = encode_forest(&sample_forest());
        let cut = cut % bytes.len();
        prop_assert!(decode_forest(&bytes[..cut]).is_err());
    }
}
