//! Property tests for the tree substrate: parser/codec round-trips and
//! structural invariants over randomly generated trees.

use proptest::prelude::*;
use treesim_tree::{codec, parse::bracket, Forest, LabelInterner, Tree};

/// Proptest strategy: a random tree as a nested bracket expression built
/// from a small label alphabet.
fn arbitrary_tree() -> impl Strategy<Value = String> {
    let leaf =
        prop::sample::select(vec!["a", "b", "c", "d", "long_label", "x1"]).prop_map(str::to_owned);
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            prop::sample::select(vec!["a", "b", "c", "r"]),
            prop::collection::vec(inner, 1..4),
        )
            .prop_map(|(label, children)| format!("{label}({})", children.join(" ")))
    })
}

fn parse(spec: &str) -> (Tree, LabelInterner) {
    let mut interner = LabelInterner::new();
    let tree = bracket::parse(&mut interner, spec).unwrap();
    (tree, interner)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse ∘ print = identity on the printed form.
    #[test]
    fn bracket_roundtrip(spec in arbitrary_tree()) {
        let (tree, interner) = parse(&spec);
        tree.validate().unwrap();
        let printed = bracket::to_string(&tree, &interner);
        let (reparsed, interner2) = parse(&printed);
        prop_assert_eq!(bracket::to_string(&reparsed, &interner2), printed);
        prop_assert_eq!(reparsed.len(), tree.len());
    }

    /// Binary codec round-trip preserves the rendered tree.
    #[test]
    fn codec_roundtrip(specs in prop::collection::vec(arbitrary_tree(), 1..6)) {
        let mut forest = Forest::new();
        for spec in &specs {
            forest.parse_bracket(spec).unwrap();
        }
        let decoded = codec::decode_forest(&codec::encode_forest(&forest)).unwrap();
        prop_assert_eq!(decoded.len(), forest.len());
        for ((_, a), (_, b)) in forest.iter().zip(decoded.iter()) {
            prop_assert_eq!(
                bracket::to_string(a, forest.interner()),
                bracket::to_string(b, decoded.interner())
            );
        }
    }

    /// Traversal invariants: counts, orders and position relations.
    #[test]
    fn traversal_invariants(spec in arbitrary_tree()) {
        let (tree, _) = parse(&spec);
        let n = tree.len();
        prop_assert_eq!(tree.preorder().count(), n);
        prop_assert_eq!(tree.postorder().count(), n);
        prop_assert_eq!(tree.bfs().count(), n);
        prop_assert_eq!(tree.subtree_size(tree.root()), n);
        prop_assert!(tree.height() <= n);
        prop_assert!(tree.leaf_count() >= 1);

        let positions = tree.positions();
        for node in tree.preorder() {
            // Children positions relate to their parent's.
            for child in tree.children(node) {
                prop_assert!(positions.pre(child) > positions.pre(node));
                prop_assert!(positions.post(child) < positions.post(node));
                prop_assert_eq!(tree.parent(child), Some(node));
            }
            // depth/height bounds.
            prop_assert!(tree.depth(node) <= tree.height());
            prop_assert!(tree.node_height(node) + tree.depth(node) <= n + 1);
        }
    }

    /// XML writer round-trips structure-only trees.
    #[test]
    fn xml_roundtrip_structure(spec in arbitrary_tree()) {
        use treesim_tree::parse::xml;
        let (tree, interner) = parse(&spec);
        let doc = xml::to_string(&tree, &interner);
        let mut interner2 = interner.clone();
        let reparsed = xml::parse(&mut interner2, &doc, xml::XmlOptions::STRUCTURE_ONLY).unwrap();
        prop_assert_eq!(&reparsed, &tree);
    }

    /// Every node except the root can be deleted, and the tree stays valid.
    #[test]
    fn deletion_keeps_validity(spec in arbitrary_tree(), victim_seed in 0usize..100) {
        let (mut tree, _) = parse(&spec);
        if tree.len() > 1 {
            let victims: Vec<_> = tree.preorder().skip(1).collect();
            let victim = victims[victim_seed % victims.len()];
            let before = tree.len();
            tree.remove_node(victim).unwrap();
            tree.validate().unwrap();
            prop_assert_eq!(tree.len(), before - 1);
            let compacted = tree.compact();
            compacted.validate().unwrap();
            prop_assert_eq!(&compacted, &tree);
        }
    }
}
