//! `xtask bench-compare`: regression gate over two `BENCH_cascade.json`
//! reports (schema `treesim-bench-cascade/v1`).
//!
//! Compares a committed baseline against a freshly generated report and
//! fails (nonzero exit) when any *work* metric regressed by more than the
//! threshold (default 25 %):
//!
//! * per-stage funnel `evaluated` counts, normalized per query — the
//!   deterministic core of the cascade's effectiveness;
//! * `engine.*.refined` / `dynamic.*.refined` counters per query — false
//!   positives that survived to Zhang–Shasha;
//! * the `refine.zs.nodes` histogram sum per query — the effective
//!   refinement DP volume (node product scaled by the fraction of cells
//!   the bounded DP actually computed), deterministic for pinned seeds;
//! * mean microseconds of every `*.us` latency histogram present in both
//!   reports — wall-clock, hence noisy. `--counters-only` omits this
//!   class; CI gates on the deterministic funnel/refinement counters
//!   with that flag and leaves latency comparison to local runs.
//!
//! "Bigger is worse" holds for everything compared; prune counts are
//! deliberately skipped (pruning *more* is an improvement, and pruning
//! less already surfaces as the next stage's `evaluated` increase).

use treesim_obs::json::Json;

/// Maximum tolerated relative increase, in percent.
pub const DEFAULT_THRESHOLD_PERCENT: f64 = 25.0;

/// One compared quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// What was compared (e.g. `funnel.propt.evaluated/query`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// New value.
    pub new: f64,
    /// Relative change in percent (positive = regression direction).
    pub change_percent: f64,
    /// Whether the change exceeds the threshold.
    pub regressed: bool,
}

/// Outcome of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Every quantity compared, in report order.
    pub deltas: Vec<Delta>,
    /// Quantities present in only one report (informational).
    pub skipped: Vec<String>,
}

impl Comparison {
    /// Whether no compared quantity regressed past the threshold.
    pub fn clean(&self) -> bool {
        self.deltas.iter().all(|d| !d.regressed)
    }
}

fn get_u64(json: &Json, path: &[&str]) -> Option<u64> {
    let mut node = json;
    for key in path {
        node = node.get(key)?;
    }
    node.as_u64()
}

fn query_count(report: &Json) -> Result<f64, String> {
    let count = get_u64(report, &["scale", "query_count"])
        .ok_or("report has no scale.query_count — not a treesim-bench-cascade/v1 report?")?;
    if count == 0 {
        return Err("scale.query_count is 0".into());
    }
    Ok(count as f64)
}

/// Funnel rows as `(stage, evaluated)` pairs.
fn funnel_evaluated(report: &Json) -> Vec<(String, u64)> {
    report
        .get("funnel")
        .and_then(Json::as_array)
        .map(|rows| {
            rows.iter()
                .filter_map(|row| {
                    let stage = row.get("stage")?.as_str()?.to_owned();
                    let evaluated = row.get("evaluated")?.as_u64()?;
                    Some((stage, evaluated))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// `<name> → value` for every `*.refined` counter in the embedded
/// metrics snapshot.
fn refined_counters(report: &Json) -> Vec<(String, u64)> {
    report
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(Json::as_array)
        .map(|rows| {
            rows.iter()
                .filter_map(|row| {
                    let name = row.get("name")?.as_str()?;
                    if !name.ends_with(".refined") {
                        return None;
                    }
                    Some((name.to_owned(), row.get("value")?.as_u64()?))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// `<name> → total` for the deterministic refinement-volume histogram
/// (`refine.zs.nodes`): the effective DP volume the run paid, gated per
/// query alongside the counters (it is seed-deterministic, unlike the
/// `*.us` wall-clock histograms).
fn refine_volume(report: &Json) -> Vec<(String, u64)> {
    report
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(Json::as_array)
        .map(|rows| {
            rows.iter()
                .filter_map(|row| {
                    let name = row.get("name")?.as_str()?;
                    if name != "refine.zs.nodes" {
                        return None;
                    }
                    Some((name.to_owned(), row.get("sum")?.as_u64()?))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// `<name> → mean µs` for every `*.us` histogram with samples.
fn latency_means(report: &Json) -> Vec<(String, f64)> {
    report
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(Json::as_array)
        .map(|rows| {
            rows.iter()
                .filter_map(|row| {
                    let name = row.get("name")?.as_str()?;
                    if !name.ends_with(".us") {
                        return None;
                    }
                    let count = row.get("count")?.as_u64()?;
                    if count == 0 {
                        return None;
                    }
                    let sum = row.get("sum")?.as_u64()?;
                    Some((name.to_owned(), sum as f64 / count as f64))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn delta(metric: String, baseline: f64, new: f64, threshold_percent: f64) -> Delta {
    let change_percent = if baseline > 0.0 {
        (new - baseline) / baseline * 100.0
    } else if new > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    Delta {
        metric,
        baseline,
        new,
        change_percent,
        regressed: change_percent > threshold_percent,
    }
}

/// Pairs two `(name, value)` lists by name, recording one-sided names in
/// `skipped`.
fn paired(
    baseline: Vec<(String, f64)>,
    new: Vec<(String, f64)>,
    skipped: &mut Vec<String>,
) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for (name, b) in &baseline {
        match new.iter().find(|(n, _)| n == name) {
            Some((_, v)) => out.push((name.clone(), *b, *v)),
            None => skipped.push(format!("{name} (baseline only)")),
        }
    }
    for (name, _) in &new {
        if !baseline.iter().any(|(n, _)| n == name) {
            skipped.push(format!("{name} (new only)"));
        }
    }
    out
}

/// Compares two parsed reports. With `counters_only`, wall-clock latency
/// histograms are left out and only the deterministic funnel /
/// refinement counters are gated.
pub fn compare(
    baseline: &Json,
    new: &Json,
    threshold_percent: f64,
    counters_only: bool,
) -> Result<Comparison, String> {
    for (label, report) in [("baseline", baseline), ("new", new)] {
        match report.get("schema").and_then(Json::as_str) {
            Some("treesim-bench-cascade/v1") => {}
            Some(other) => return Err(format!("{label}: unsupported schema {other:?}")),
            None => return Err(format!("{label}: missing schema field")),
        }
    }
    let base_queries = query_count(baseline)?;
    let new_queries = query_count(new)?;
    let mut skipped = Vec::new();
    let mut deltas = Vec::new();

    // Funnel evaluated counts, per query (scale-independent).
    let base_funnel: Vec<(String, f64)> = funnel_evaluated(baseline)
        .into_iter()
        .map(|(s, v)| (s, v as f64 / base_queries))
        .collect();
    let new_funnel: Vec<(String, f64)> = funnel_evaluated(new)
        .into_iter()
        .map(|(s, v)| (s, v as f64 / new_queries))
        .collect();
    for (stage, b, n) in paired(base_funnel, new_funnel, &mut skipped) {
        deltas.push(delta(
            format!("funnel.{stage}.evaluated/query"),
            b,
            n,
            threshold_percent,
        ));
    }

    // Refinement volume per query.
    let base_refined: Vec<(String, f64)> = refined_counters(baseline)
        .into_iter()
        .map(|(s, v)| (s, v as f64 / base_queries))
        .collect();
    let new_refined: Vec<(String, f64)> = refined_counters(new)
        .into_iter()
        .map(|(s, v)| (s, v as f64 / new_queries))
        .collect();
    for (name, b, n) in paired(base_refined, new_refined, &mut skipped) {
        deltas.push(delta(format!("{name}/query"), b, n, threshold_percent));
    }

    // Effective refinement DP volume per query (deterministic — gated
    // even in --counters-only mode).
    let base_volume: Vec<(String, f64)> = refine_volume(baseline)
        .into_iter()
        .map(|(s, v)| (s, v as f64 / base_queries))
        .collect();
    let new_volume: Vec<(String, f64)> = refine_volume(new)
        .into_iter()
        .map(|(s, v)| (s, v as f64 / new_queries))
        .collect();
    for (name, b, n) in paired(base_volume, new_volume, &mut skipped) {
        deltas.push(delta(format!("{name} sum/query"), b, n, threshold_percent));
    }

    // Latency histogram means (already per-sample, no normalization).
    if !counters_only {
        for (name, b, n) in paired(latency_means(baseline), latency_means(new), &mut skipped) {
            deltas.push(delta(format!("{name} mean"), b, n, threshold_percent));
        }
    }

    if deltas.is_empty() {
        return Err("nothing comparable between the two reports".into());
    }
    Ok(Comparison { deltas, skipped })
}

/// CLI entry: loads both files, compares, prints a table. Returns
/// `Ok(true)` when clean.
pub fn run(
    baseline_path: &str,
    new_path: &str,
    threshold_percent: f64,
    counters_only: bool,
) -> Result<bool, String> {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        treesim_obs::parse_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let comparison = compare(
        &load(baseline_path)?,
        &load(new_path)?,
        threshold_percent,
        counters_only,
    )?;
    let mode = if counters_only { ", counters only" } else { "" };
    println!("bench-compare: {baseline_path} → {new_path} (threshold +{threshold_percent}%{mode})");
    for d in &comparison.deltas {
        let marker = if d.regressed { "REGRESSED" } else { "ok" };
        println!(
            "  {:9}  {:<40} {:>12.2} → {:>12.2}  ({:+.1}%)",
            marker, d.metric, d.baseline, d.new, d.change_percent
        );
    }
    for s in &comparison.skipped {
        println!("  skipped    {s}");
    }
    let regressions = comparison.deltas.iter().filter(|d| d.regressed).count();
    if regressions == 0 {
        println!(
            "bench-compare: clean ({} metrics compared)",
            comparison.deltas.len()
        );
    } else {
        println!(
            "bench-compare: {regressions} regression(s) past +{threshold_percent}% — \
             investigate or regenerate the baseline if the change is intended"
        );
    }
    Ok(comparison.clean())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(queries: u64, propt_evaluated: u64, refined: u64, zs_mean: u64) -> Json {
        report_with_volume(queries, propt_evaluated, refined, zs_mean, queries * 400)
    }

    fn report_with_volume(
        queries: u64,
        propt_evaluated: u64,
        refined: u64,
        zs_mean: u64,
        zs_nodes: u64,
    ) -> Json {
        Json::obj(vec![
            ("schema", Json::Str("treesim-bench-cascade/v1".to_owned())),
            (
                "scale",
                Json::obj(vec![
                    ("dataset_size", Json::U64(60)),
                    ("query_count", Json::U64(queries)),
                ]),
            ),
            (
                "funnel",
                Json::Arr(vec![
                    Json::obj(vec![
                        ("stage", Json::Str("size".to_owned())),
                        ("evaluated", Json::U64(queries * 60)),
                        ("pruned", Json::U64(queries * 40)),
                    ]),
                    Json::obj(vec![
                        ("stage", Json::Str("propt".to_owned())),
                        ("evaluated", Json::U64(propt_evaluated)),
                        ("pruned", Json::U64(2)),
                    ]),
                ]),
            ),
            (
                "metrics",
                Json::obj(vec![
                    (
                        "counters",
                        Json::Arr(vec![Json::obj(vec![
                            ("name", Json::Str("engine.knn.refined".to_owned())),
                            ("value", Json::U64(refined)),
                        ])]),
                    ),
                    ("gauges", Json::Arr(vec![])),
                    (
                        "histograms",
                        Json::Arr(vec![
                            Json::obj(vec![
                                ("name", Json::Str("refine.zs.us".to_owned())),
                                ("count", Json::U64(10)),
                                ("sum", Json::U64(zs_mean * 10)),
                            ]),
                            Json::obj(vec![
                                ("name", Json::Str("refine.zs.nodes".to_owned())),
                                ("count", Json::U64(10)),
                                ("sum", Json::U64(zs_nodes)),
                            ]),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    #[test]
    fn identical_reports_are_clean() {
        let a = report(6, 120, 30, 50);
        let comparison = compare(&a, &a, DEFAULT_THRESHOLD_PERCENT, false).unwrap();
        assert!(comparison.clean());
        assert!(comparison.skipped.is_empty());
        // size + propt funnel rows, one refined counter, the zs.nodes
        // volume, one latency mean.
        assert_eq!(comparison.deltas.len(), 5);
        assert!(comparison.deltas.iter().all(|d| d.change_percent == 0.0));
    }

    #[test]
    fn per_query_normalization_absorbs_scale_changes() {
        // Twice the queries, twice the totals: no regression.
        let comparison = compare(
            &report(6, 120, 30, 50),
            &report(12, 240, 60, 50),
            DEFAULT_THRESHOLD_PERCENT,
            false,
        )
        .unwrap();
        assert!(comparison.clean(), "{:?}", comparison.deltas);
    }

    #[test]
    fn funnel_blowup_regresses() {
        let comparison = compare(
            &report(6, 120, 30, 50),
            &report(6, 160, 30, 50), // +33% propt evaluations
            DEFAULT_THRESHOLD_PERCENT,
            false,
        )
        .unwrap();
        assert!(!comparison.clean());
        let bad: Vec<&Delta> = comparison.deltas.iter().filter(|d| d.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "funnel.propt.evaluated/query");
    }

    #[test]
    fn latency_regression_and_threshold_override() {
        let base = report(6, 120, 30, 50);
        let slow = report(6, 120, 30, 70); // +40% mean refine latency
        assert!(!compare(&base, &slow, 25.0, false).unwrap().clean());
        assert!(compare(&base, &slow, 50.0, false).unwrap().clean());
        // Improvements never regress.
        assert!(compare(&slow, &base, 25.0, false).unwrap().clean());
    }

    #[test]
    fn counters_only_ignores_latency_noise() {
        let base = report(6, 120, 30, 50);
        let slow = report(6, 120, 30, 70); // +40% mean refine latency
        let comparison = compare(&base, &slow, 25.0, true).unwrap();
        assert!(comparison.clean(), "{:?}", comparison.deltas);
        // Only the funnel rows, the refined counter, and the zs.nodes
        // volume are compared.
        assert_eq!(comparison.deltas.len(), 4);
        assert!(comparison.deltas.iter().all(|d| !d.metric.contains(".us")));
        // Counter regressions still gate.
        let worse = report(6, 120, 60, 50); // 2× refined
        assert!(!compare(&base, &worse, 25.0, true).unwrap().clean());
    }

    #[test]
    fn refinement_volume_gates_even_counters_only() {
        let base = report_with_volume(6, 120, 30, 50, 2400);
        let bloated = report_with_volume(6, 120, 30, 50, 3600); // +50% DP volume
        let comparison = compare(&base, &bloated, 25.0, true).unwrap();
        assert!(!comparison.clean());
        let bad: Vec<&Delta> = comparison.deltas.iter().filter(|d| d.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "refine.zs.nodes sum/query");
        // A volume drop (the bounded DP working) never regresses.
        assert!(compare(&bloated, &base, 25.0, true).unwrap().clean());
    }

    #[test]
    fn schema_and_scale_are_validated() {
        let bad = Json::obj(vec![("schema", Json::Str("other/v9".to_owned()))]);
        assert!(compare(&bad, &bad, 25.0, false).is_err());
        let no_schema = Json::obj(vec![]);
        assert!(compare(&no_schema, &no_schema, 25.0, false).is_err());
    }

    #[test]
    fn one_sided_metrics_are_skipped_not_compared() {
        let mut b = report(6, 120, 30, 50);
        // Drop the baseline histograms so refine.zs.us exists on one side.
        if let Json::Obj(entries) = &mut b {
            for (key, value) in entries.iter_mut() {
                if key == "metrics" {
                    if let Json::Obj(metric_entries) = value {
                        for (metric_key, metric_value) in metric_entries.iter_mut() {
                            if metric_key == "histograms" {
                                *metric_value = Json::Arr(Vec::new());
                            }
                        }
                    }
                }
            }
        }
        let comparison = compare(&b, &report(6, 120, 30, 50), 25.0, false).unwrap();
        assert!(comparison.clean());
        assert!(comparison
            .skipped
            .iter()
            .any(|s| s.contains("refine.zs.us")));
    }
}
