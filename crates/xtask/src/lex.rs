//! A lightweight Rust lexer for the analyzer: enough token structure to
//! write string/comment/attribute-aware lints without pulling in a real
//! parser. Comments are *kept* in the token stream (lints read
//! `// treesim-lint: allow(...)` directives and doc coverage from them);
//! string/char literals are opaque tokens so nothing inside them can
//! false-positive a lint; everything else is idents, numbers, lifetimes
//! and single-character punctuation.
//!
//! The lexer is intentionally forgiving: on malformed input (unterminated
//! string, stray byte) it emits what it has and moves on — the compiler,
//! not the analyzer, owns syntax errors.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// String literal of any flavor (`"…"`, `r"…"`, `r#"…"#`, `b"…"`).
    /// [`Token::value`] holds the contents without quotes/hashes.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integer or float, any base).
    Number,
    /// Non-doc comment (`// …` or `/* … */`), text in [`Token::value`].
    Comment,
    /// Doc comment (`///`, `//!`, `/** */`, `/*! */`).
    DocComment,
    /// Single punctuation character (text in [`Token::value`]).
    Punct,
}

/// One lexed token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
    /// 1-based column (in characters) of `start`.
    pub col: u32,
    /// Token text: literal contents for [`TokenKind::Str`]/comment text
    /// for comments/raw source text otherwise.
    pub value: String,
}

impl Token {
    /// Whether this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.value.chars().next() == Some(c)
    }

    /// Whether this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.value == name
    }

    /// Whether this token never affects expression structure (comments).
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokenKind::Comment | TokenKind::DocComment)
    }
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line/col (UTF-8 continuation bytes do
    /// not advance the column).
    fn bump(&mut self) {
        if let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if b & 0xC0 != 0x80 {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn eat_line_comment(&mut self) -> (TokenKind, usize) {
        let start = self.pos;
        let doc = matches!(
            (self.peek_at(2), self.peek_at(3)),
            (Some(b'/'), Some(b'/')) // `////…` is an ordinary comment…
        )
        .then_some(TokenKind::Comment)
        .unwrap_or(match self.peek_at(2) {
            Some(b'/') | Some(b'!') => TokenKind::DocComment,
            _ => TokenKind::Comment,
        });
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        (doc, start)
    }

    fn eat_block_comment(&mut self) -> (TokenKind, usize) {
        let start = self.pos;
        let kind = match self.peek_at(2) {
            Some(b'*') if self.peek_at(3) != Some(b'/') => TokenKind::DocComment,
            Some(b'!') => TokenKind::DocComment,
            _ => TokenKind::Comment,
        };
        self.bump_n(2);
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        (kind, start)
    }

    /// Consumes a `"…"` literal body (opening quote already consumed);
    /// returns the contents.
    fn eat_quoted(&mut self) -> String {
        let content_start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => break,
                _ => self.bump(),
            }
        }
        let content = self.src[content_start..self.pos].to_owned();
        self.bump(); // closing quote (if any)
        content
    }

    /// Consumes a raw string starting at `r` / `br` (already past the
    /// prefix, at the first `#` or `"`); returns the contents.
    fn eat_raw_string(&mut self) -> String {
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let content_start = self.pos;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat(b'#').take(hashes))
            .collect();
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos..].starts_with(&closer) {
                let content = self.src[content_start..self.pos].to_owned();
                self.bump_n(closer.len());
                return content;
            }
            self.bump();
        }
        self.src[content_start..self.pos].to_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into tokens (comments included, whitespace dropped).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(b) = lx.peek() {
        let (line, col, start) = (lx.line, lx.col, lx.pos);
        match b {
            _ if b.is_ascii_whitespace() => lx.bump(),
            b'/' if lx.peek_at(1) == Some(b'/') => {
                let (kind, s) = lx.eat_line_comment();
                tokens.push(Token {
                    kind,
                    start: s,
                    end: lx.pos,
                    line,
                    col,
                    value: src[s..lx.pos].to_owned(),
                });
            }
            b'/' if lx.peek_at(1) == Some(b'*') => {
                let (kind, s) = lx.eat_block_comment();
                tokens.push(Token {
                    kind,
                    start: s,
                    end: lx.pos,
                    line,
                    col,
                    value: src[s..lx.pos].to_owned(),
                });
            }
            b'"' => {
                lx.bump();
                let value = lx.eat_quoted();
                tokens.push(Token {
                    kind: TokenKind::Str,
                    start,
                    end: lx.pos,
                    line,
                    col,
                    value,
                });
            }
            b'r' | b'b' if is_raw_string_start(&lx) => {
                // r"…", r#"…"#, br"…", b"…" — position past the prefix.
                let mut prefix = 1;
                if b == b'b' && lx.peek_at(1) == Some(b'r') {
                    prefix = 2;
                }
                lx.bump_n(prefix);
                let value = if lx.peek() == Some(b'"') {
                    lx.bump();
                    lx.eat_quoted()
                } else {
                    lx.eat_raw_string()
                };
                tokens.push(Token {
                    kind: TokenKind::Str,
                    start,
                    end: lx.pos,
                    line,
                    col,
                    value,
                });
            }
            b'r' if lx.peek_at(1) == Some(b'#') && lx.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier r#type.
                lx.bump_n(2);
                while lx.peek().is_some_and(is_ident_continue) {
                    lx.bump();
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    start,
                    end: lx.pos,
                    line,
                    col,
                    value: src[start + 2..lx.pos].to_owned(),
                });
            }
            b'b' if lx.peek_at(1) == Some(b'\'') => {
                lx.bump(); // `b`, then fall through to char handling below
                lex_char_or_lifetime(&mut lx, &mut tokens, start, line, col);
            }
            b'\'' => lex_char_or_lifetime(&mut lx, &mut tokens, start, line, col),
            _ if is_ident_start(b) => {
                while lx.peek().is_some_and(is_ident_continue) {
                    lx.bump();
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    start,
                    end: lx.pos,
                    line,
                    col,
                    value: src[start..lx.pos].to_owned(),
                });
            }
            _ if b.is_ascii_digit() => {
                while lx
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    lx.bump();
                }
                // Fraction part — but not `0..n` ranges or `1.max()` calls.
                if lx.peek() == Some(b'.') && lx.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                    lx.bump();
                    while lx
                        .peek()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                    {
                        lx.bump();
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    start,
                    end: lx.pos,
                    line,
                    col,
                    value: src[start..lx.pos].to_owned(),
                });
            }
            _ => {
                lx.bump();
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    start,
                    end: lx.pos,
                    line,
                    col,
                    value: src[start..lx.pos].to_owned(),
                });
            }
        }
    }
    tokens
}

fn is_raw_string_start(lx: &Lexer<'_>) -> bool {
    match lx.peek() {
        Some(b'r') => match lx.peek_at(1) {
            Some(b'"') => true,
            Some(b'#') => {
                // r#"…"# vs raw ident r#type: a quote after the hashes.
                let mut ahead = 1;
                while lx.peek_at(ahead) == Some(b'#') {
                    ahead += 1;
                }
                lx.peek_at(ahead) == Some(b'"')
            }
            _ => false,
        },
        Some(b'b') => matches!(
            (lx.peek_at(1), lx.peek_at(2)),
            (Some(b'"'), _) | (Some(b'r'), Some(b'"')) | (Some(b'r'), Some(b'#'))
        ),
        _ => false,
    }
}

/// Disambiguates `'a` (lifetime) from `'x'` (char literal). Called with
/// `lx` at the opening quote.
fn lex_char_or_lifetime(
    lx: &mut Lexer<'_>,
    tokens: &mut Vec<Token>,
    start: usize,
    line: u32,
    col: u32,
) {
    // Lifetime: quote + ident that is NOT followed by a closing quote.
    if lx.peek_at(1).is_some_and(is_ident_start) && lx.peek_at(2) != Some(b'\'') {
        lx.bump(); // quote
        while lx.peek().is_some_and(is_ident_continue) {
            lx.bump();
        }
        tokens.push(Token {
            kind: TokenKind::Lifetime,
            start,
            end: lx.pos,
            line,
            col,
            value: lx.src[start..lx.pos].to_owned(),
        });
        return;
    }
    lx.bump(); // quote
    match lx.peek() {
        Some(b'\\') => {
            lx.bump_n(2);
            // Escapes can be multi-byte (\u{1F600}); scan to the quote.
            while lx.peek().is_some() && lx.peek() != Some(b'\'') {
                lx.bump();
            }
        }
        Some(_) => {
            lx.bump();
            // Multi-byte UTF-8 scalar: keep going to the closing quote.
            while lx.peek().is_some() && lx.peek() != Some(b'\'') {
                lx.bump();
            }
        }
        None => {}
    }
    lx.bump(); // closing quote
    tokens.push(Token {
        kind: TokenKind::Char,
        start,
        end: lx.pos,
        line,
        col,
        value: lx.src[start..lx.pos].to_owned(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.value)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("let x = foo[0] + 1.5;");
        assert_eq!(toks[0], (TokenKind::Ident, "let".to_owned()));
        assert_eq!(toks[3], (TokenKind::Ident, "foo".to_owned()));
        assert_eq!(toks[5], (TokenKind::Number, "0".to_owned()));
        assert_eq!(toks[8], (TokenKind::Number, "1.5".to_owned()));
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks = kinds("0..n");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Number, "0".to_owned()),
                (TokenKind::Punct, ".".to_owned()),
                (TokenKind::Punct, ".".to_owned()),
                (TokenKind::Ident, "n".to_owned()),
            ]
        );
    }

    #[test]
    fn strings_are_opaque() {
        // `.unwrap()` inside a string must not produce ident tokens.
        let toks = kinds(r#"let s = "x.unwrap() // not a comment";"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(toks
            .iter()
            .any(|(k, v)| *k == TokenKind::Str && v.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, v)| *k == TokenKind::Ident && v == "unwrap"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r###"let s = r#"has "quotes" and \ raw"#; let r#type = 1;"###);
        assert!(toks
            .iter()
            .any(|(k, v)| *k == TokenKind::Str && v.contains("quotes")));
        assert!(toks
            .iter()
            .any(|(k, v)| *k == TokenKind::Ident && v == "type"));
        let toks = kinds(r##"b"bytes" br#"raw bytes"#"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
    }

    #[test]
    fn comments_and_doc_comments() {
        let toks = kinds("/// doc\n// plain\n//! inner\n/* block */ /** docblock */ fn f() {}");
        let docs: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::DocComment)
            .map(|(_, v)| v)
            .collect();
        assert_eq!(docs.len(), 3, "{docs:?}");
        let comments = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Comment)
            .count();
        assert_eq!(comments, 2);
    }

    #[test]
    fn quadruple_slash_is_not_doc() {
        let toks = kinds("//// separator\nfn f() {}");
        assert_eq!(toks[0].0, TokenKind::Comment);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = 'é'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3
        );
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("fn f() {\n    x.unwrap();\n}");
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 2);
        assert_eq!(unwrap.col, 7);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still outer */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "x".to_owned()));
    }

    #[test]
    fn unterminated_input_does_not_hang() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b'"] {
            let _ = lex(src); // must terminate
        }
    }
}
