//! Lint infrastructure: the per-file source model ([`SourceFile`] with
//! tokens, `#[cfg(test)]`/`#[test]` region masking and inline
//! `// treesim-lint: allow(<id>)` directives), [`Finding`]s, and the
//! machine-readable allowlist file (`analyze.allow`).

use crate::lex::{lex, Token, TokenKind};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the analyzer (exit 1).
    Error,
    /// Reported but never fails the run (unused allowlist entries).
    Warning,
}

impl Severity {
    /// Lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One diagnostic produced by a lint pass.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable lint id (`panic-surface`, `atomics-audit`, …).
    pub lint: &'static str,
    /// Severity (errors fail the run).
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The trimmed source line the finding points at.
    pub snippet: String,
}

/// A lexed source file plus the derived masks lints need.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Full source text.
    pub src: String,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
    /// `(line, lint-id)` pairs from inline allow directives.
    allows: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes `src` and computes test regions and allow directives.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let test_regions = test_regions(&tokens);
        let allows = allow_directives(&tokens);
        SourceFile {
            path: path.to_owned(),
            src: src.to_owned(),
            tokens,
            test_regions,
            allows,
        }
    }

    /// Whether byte offset `offset` falls inside test-only code.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    /// Whether `lint` is allowed on `line` by an inline directive on the
    /// same line or the line directly above.
    pub fn allowed_inline(&self, lint: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(l, id)| (*l == line || *l + 1 == line) && id == lint)
    }

    /// The trimmed text of 1-based `line`.
    pub fn line_text(&self, line: u32) -> &str {
        self.src
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
    }

    /// Builds a finding at `token`, unless it is inline-allowed.
    pub fn finding(&self, lint: &'static str, token: &Token, message: String) -> Option<Finding> {
        if self.allowed_inline(lint, token.line) {
            return None;
        }
        Some(Finding {
            lint,
            severity: Severity::Error,
            path: self.path.clone(),
            line: token.line,
            col: token.col,
            message,
            snippet: self.line_text(token.line).to_owned(),
        })
    }

    /// Index of the next non-trivia token at or after `i`.
    pub fn next_code(&self, mut i: usize) -> Option<usize> {
        while let Some(t) = self.tokens.get(i) {
            if !t.is_trivia() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Index of the previous non-trivia token strictly before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.tokens[j].is_trivia())
    }
}

/// Extracts `(line, id)` pairs from `// treesim-lint: allow(a, b)`
/// comments.
fn allow_directives(tokens: &[Token]) -> Vec<(u32, String)> {
    let mut allows = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Comment && t.kind != TokenKind::DocComment {
            continue;
        }
        let Some(rest) = t.value.split("treesim-lint:").nth(1) else {
            continue;
        };
        let Some(args) = rest
            .trim_start()
            .strip_prefix("allow(")
            .and_then(|s| s.split(')').next())
        else {
            continue;
        };
        for id in args.split(',') {
            let id = id.trim();
            if !id.is_empty() {
                allows.push((t.line, id.to_owned()));
            }
        }
    }
    allows
}

/// Computes byte ranges of items annotated `#[test]`, `#[cfg(test)]` or
/// any attribute mentioning the `test` ident (e.g. `#[cfg(all(test, …))]`,
/// `#[bench]` is matched via its own name below).
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_trivia())
        .collect();
    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        if tokens[i].is_punct('#') && code.get(k + 1).is_some_and(|&j| tokens[j].is_punct('[')) {
            // Collect the attribute token span [start_k, end_k].
            let mut depth = 0usize;
            let mut end_k = k + 1;
            let mut is_test_attr = false;
            while end_k < code.len() {
                let t = &tokens[code[end_k]];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_ident("test") || t.is_ident("bench") {
                    is_test_attr = true;
                }
                end_k += 1;
            }
            if is_test_attr {
                // Mask from the attribute to the end of the annotated item:
                // past further attributes and the signature to the first
                // `{`…matching `}` (or a `;` before any body).
                let start_offset = tokens[i].start;
                let mut m = end_k + 1;
                let mut brace_depth = 0usize;
                let mut entered = false;
                while m < code.len() {
                    let t = &tokens[code[m]];
                    if t.is_punct('{') {
                        brace_depth += 1;
                        entered = true;
                    } else if t.is_punct('}') {
                        brace_depth = brace_depth.saturating_sub(1);
                        if entered && brace_depth == 0 {
                            break;
                        }
                    } else if t.is_punct(';') && !entered {
                        break;
                    }
                    m += 1;
                }
                let end_offset = code
                    .get(m)
                    .map_or(tokens.last().map_or(0, |t| t.end), |&j| tokens[j].end);
                regions.push((start_offset, end_offset));
                k = m + 1;
                continue;
            }
            k = end_k + 1;
            continue;
        }
        k += 1;
    }
    regions
}

/// One entry of the `analyze.allow` file.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Lint id the entry silences.
    pub lint: String,
    /// Workspace-relative file the entry applies to.
    pub path: String,
    /// Substring the finding's source line must contain.
    pub pattern: String,
    /// Why the finding is acceptable (required).
    pub justification: String,
    /// Line of the entry in `analyze.allow` (for unused-entry reports).
    pub line: u32,
}

/// The parsed allowlist plus use tracking.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// All entries in file order.
    pub entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parses the `analyze.allow` format: one entry per non-comment line,
    /// `<lint-id> <path> "<substring>" <justification…>`.
    /// Returns the allowlist and any parse errors as findings.
    pub fn parse(text: &str) -> (Allowlist, Vec<Finding>) {
        let mut list = Allowlist::default();
        let mut errors = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let line_no = idx as u32 + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parse_error = |message: String| Finding {
                lint: "allowlist",
                severity: Severity::Error,
                path: "analyze.allow".to_owned(),
                line: line_no,
                col: 1,
                message,
                snippet: line.to_owned(),
            };
            let mut head = line.splitn(3, char::is_whitespace);
            let (Some(lint), Some(path), Some(rest)) = (head.next(), head.next(), head.next())
            else {
                errors.push(parse_error(
                    "expected `<lint-id> <path> \"<substring>\" <justification>`".to_owned(),
                ));
                continue;
            };
            let rest = rest.trim_start();
            let Some(after_quote) = rest.strip_prefix('"') else {
                errors.push(parse_error(
                    "third field must be a double-quoted substring".to_owned(),
                ));
                continue;
            };
            let Some(close) = after_quote.find('"') else {
                errors.push(parse_error("unterminated substring".to_owned()));
                continue;
            };
            let pattern = &after_quote[..close];
            let justification = after_quote[close + 1..].trim();
            if justification.is_empty() {
                errors.push(parse_error(
                    "allowlist entries require a justification".to_owned(),
                ));
                continue;
            }
            list.entries.push(AllowEntry {
                lint: lint.to_owned(),
                path: path.to_owned(),
                pattern: pattern.to_owned(),
                justification: justification.to_owned(),
                line: line_no,
            });
        }
        list.used = vec![false; list.entries.len()];
        (list, errors)
    }

    /// Whether `finding` is covered by an entry (marks the entry used).
    pub fn covers(&mut self, finding: &Finding) -> bool {
        let mut hit = false;
        for (entry, used) in self.entries.iter().zip(self.used.iter_mut()) {
            if entry.lint == finding.lint
                && entry.path == finding.path
                && finding.snippet.contains(&entry.pattern)
            {
                *used = true;
                hit = true;
            }
        }
        hit
    }

    /// Warning findings for entries that never matched anything.
    pub fn unused(&self) -> Vec<Finding> {
        self.entries
            .iter()
            .zip(&self.used)
            .filter(|&(_, used)| !used)
            .map(|(entry, _)| Finding {
                lint: "allowlist",
                severity: Severity::Warning,
                path: "analyze.allow".to_owned(),
                line: entry.line,
                col: 1,
                message: format!(
                    "unused allowlist entry ({} @ {} \"{}\", justified: {}) — remove it \
                     or fix the pattern",
                    entry.lint, entry.path, entry.pattern, entry.justification
                ),
                snippet: String::new(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_masks_cfg_test_module() {
        let file = SourceFile::parse(
            "x.rs",
            "fn live() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n\
             fn live2() {}\n",
        );
        let live = file.tokens.iter().find(|t| t.is_ident("live")).unwrap();
        assert!(!file.in_test_code(live.start));
        let masked = file.tokens.iter().find(|t| t.is_ident("y")).unwrap();
        assert!(file.in_test_code(masked.start));
        let live2 = file.tokens.iter().find(|t| t.is_ident("live2")).unwrap();
        assert!(!file.in_test_code(live2.start));
    }

    #[test]
    fn test_region_masks_test_fn_and_attr_only_items() {
        let file = SourceFile::parse(
            "x.rs",
            "#[test]\nfn check() { a.unwrap(); }\n\
             #[cfg(test)]\nuse std::fmt;\n\
             #[derive(Debug)]\nstruct S { field: u32 }\n",
        );
        let a = file.tokens.iter().find(|t| t.is_ident("a")).unwrap();
        assert!(file.in_test_code(a.start));
        let fmt = file.tokens.iter().find(|t| t.is_ident("fmt")).unwrap();
        assert!(file.in_test_code(fmt.start));
        let field = file.tokens.iter().find(|t| t.is_ident("field")).unwrap();
        assert!(!file.in_test_code(field.start), "derive is not a test attr");
    }

    #[test]
    fn inline_allow_same_and_next_line() {
        let file = SourceFile::parse(
            "x.rs",
            "// treesim-lint: allow(panic-surface)\nfn a() {}\n\
             fn b() {} // treesim-lint: allow(atomics-audit, doc-coverage)\n",
        );
        assert!(file.allowed_inline("panic-surface", 2));
        assert!(!file.allowed_inline("panic-surface", 3));
        assert!(file.allowed_inline("atomics-audit", 3));
        assert!(file.allowed_inline("doc-coverage", 3));
        assert!(file.allowed_inline("doc-coverage", 4));
    }

    #[test]
    fn allowlist_parses_matches_and_tracks_use() {
        let (mut list, errors) = Allowlist::parse(
            "# comment\n\
             \n\
             panic-surface crates/obs/src/metrics.rs \"poisoned\" lock poisoning is fatal\n\
             doc-coverage crates/tree/src/lib.rs \"pub fn secret\" internal API\n",
        );
        assert!(errors.is_empty());
        assert_eq!(list.entries.len(), 2);
        let finding = Finding {
            lint: "panic-surface",
            severity: Severity::Error,
            path: "crates/obs/src/metrics.rs".to_owned(),
            line: 10,
            col: 5,
            message: String::new(),
            snippet: ".lock().expect(\"metrics registry poisoned\");".to_owned(),
        };
        assert!(list.covers(&finding));
        let unused = list.unused();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].severity, Severity::Warning);
        assert!(unused[0].message.contains("pub fn secret"));
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        for bad in [
            "panic-surface only-two-fields",
            "panic-surface a.rs no-quotes here",
            "panic-surface a.rs \"unterminated",
            "panic-surface a.rs \"ok\"", // missing justification
        ] {
            let (_, errors) = Allowlist::parse(bad);
            assert_eq!(errors.len(), 1, "{bad}");
        }
    }
}
