//! `atomics-audit`: every atomic memory ordering in the workspace is
//! accounted for.
//!
//! Two rules:
//!
//! 1. `Ordering::SeqCst` is deny-by-default **everywhere** — a `SeqCst`
//!    that actually means something deserves an explicit justification
//!    (inline allow or `analyze.allow` entry); most are cargo-culted.
//! 2. Inside `crates/obs` (the only crate that hand-rolls lock-free
//!    protocols) every ordering use must match the per-module table
//!    below. Adding an atomic to `treesim-obs` means extending the table
//!    in the same change — which puts the intended happens-before edge
//!    in front of a reviewer.
//!
//! Only the five atomic orderings are matched; `std::cmp::Ordering`
//! (`Less`/`Equal`/`Greater`) never collides.

use super::Lint;
use crate::lex::TokenKind;
use crate::lint::{Finding, SourceFile};

/// The per-module contract for `crates/obs`. Each entry documents *why*
/// those orderings (and only those) are sound in that module.
const OBS_ALLOWED: &[(&str, &[&str])] = &[
    // Counters/gauges/histogram cells are independent monotone values;
    // snapshot consistency is explicitly best-effort, so every access is
    // Relaxed. Anything stronger would be a lie about what snapshots
    // guarantee.
    ("crates/obs/src/metrics.rs", &["Relaxed"]),
    // The SINK_ACTIVE flag: Release store on install/clear pairs with the
    // Acquire hot-path load, so observing `true` implies the sink slot
    // write is visible (see DESIGN.md §9 for the interleaving argument).
    ("crates/obs/src/span.rs", &["Release", "Acquire"]),
    // The flight recorder's only atomic is the sequence-id counter:
    // fetch_add is an atomic RMW, so Relaxed already guarantees unique
    // monotone ids, and no other memory is published through the counter
    // (record contents travel under the shard mutex). The per-kind
    // dropped counts are independent monotone tallies like metrics.rs.
    ("crates/obs/src/recorder.rs", &["Relaxed"]),
    // Trace ids and per-trace span ids come from fetch_add RMWs (unique
    // and monotone under Relaxed, like the recorder's sequence); the
    // sampler knobs are independent configuration cells read best-effort;
    // span contents travel under the per-trace mutex and the thread-local
    // context, never through an atomic. No cross-atomic happens-before
    // edge exists to strengthen.
    ("crates/obs/src/trace.rs", &["Relaxed"]),
    // The manual-clock override cell and its active flag are independent
    // configuration values: tests that inject time hold the clock's own
    // mutex for exclusivity, and readers take whatever instant they see
    // (time is inherently racy to read). No memory is published through
    // either cell, so Relaxed is the honest ordering.
    ("crates/obs/src/clock.rs", &["Relaxed"]),
    // The window ring's `epoch` watermark is a publish flag: the Release
    // store happens only after sealed deltas are pushed under the ring
    // mutex, pairing with the Acquire load in `sealed_through()` so a
    // reader that observes epoch ≥ e also observes every interval sealed
    // before it (`atomic-role: epoch = publish` in the module docs; the
    // model checker pins the edge in tests/model.rs).
    ("crates/obs/src/window.rs", &["Release", "Acquire"]),
    // The degradation latch and worst-burn cell are a poll-only pair of
    // independent best-effort values refreshed together by `publish()`;
    // callers only ever read them for logging, and no other memory is
    // transferred through them, so Relaxed suffices (the docs' atomic-role
    // directives say the same).
    ("crates/obs/src/slo.rs", &["Relaxed"]),
    // The model checker *interprets* orderings rather than relying on
    // them: its classification helpers name Relaxed/Acquire/Release to
    // sort orderings into release/acquire classes, and its own inner
    // state travels under a std mutex. Its shim methods accept any
    // ordering from the code under test; none of these literals is a
    // synchronization decision of the module itself.
    (
        "crates/obs/src/model.rs",
        &["Relaxed", "Acquire", "Release"],
    ),
];

/// Atomic ordering names (as written after `Ordering::`).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The `atomics-audit` pass.
#[derive(Debug, Default)]
pub struct AtomicsAudit;

impl Lint for AtomicsAudit {
    fn id(&self) -> &'static str {
        "atomics-audit"
    }

    fn description(&self) -> &'static str {
        "atomic orderings match the crates/obs module table; SeqCst is deny-by-default"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Finding> {
        let mut findings = Vec::new();
        let in_obs = file.path.starts_with("crates/obs/src/");
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.kind != TokenKind::Ident || !t.is_ident("Ordering") || file.in_test_code(t.start) {
                continue;
            }
            // Match `Ordering :: <atomic-ordering>`.
            let Some(c1) = file.next_code(i + 1) else {
                continue;
            };
            let Some(c2) = file.next_code(c1 + 1) else {
                continue;
            };
            let Some(v) = file.next_code(c2 + 1) else {
                continue;
            };
            if !file.tokens[c1].is_punct(':') || !file.tokens[c2].is_punct(':') {
                continue;
            }
            let ordering = &file.tokens[v];
            if ordering.kind != TokenKind::Ident
                || !ATOMIC_ORDERINGS.contains(&ordering.value.as_str())
            {
                continue;
            }
            if ordering.value == "SeqCst" {
                findings.extend(
                    file.finding(
                        self.id(),
                        ordering,
                        "Ordering::SeqCst is deny-by-default — name the happens-before edge \
                     you need and use Acquire/Release/AcqRel, or allowlist with the reason \
                     SeqCst is genuinely required"
                            .to_owned(),
                    ),
                );
                continue;
            }
            if in_obs {
                let allowed = OBS_ALLOWED
                    .iter()
                    .find(|(path, _)| *path == file.path)
                    .map(|(_, orderings)| *orderings);
                match allowed {
                    Some(orderings) if orderings.contains(&ordering.value.as_str()) => {}
                    Some(orderings) => findings.extend(file.finding(
                        self.id(),
                        ordering,
                        format!(
                            "Ordering::{} is not in the {} allowlist table ({}) — if the \
                             new edge is sound, extend OBS_ALLOWED in \
                             crates/xtask/src/lints/atomics.rs with a comment deriving it",
                            ordering.value,
                            file.path,
                            orderings.join(", ")
                        ),
                    )),
                    None => findings.extend(file.finding(
                        self.id(),
                        ordering,
                        format!(
                            "{} uses atomics but has no entry in the OBS_ALLOWED module \
                             table — add one with a comment deriving the protocol",
                            file.path
                        ),
                    )),
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        AtomicsAudit.check_file(&SourceFile::parse(path, src))
    }

    #[test]
    fn seqcst_denied_everywhere() {
        let findings = run(
            "crates/search/src/engine.rs",
            "fn f(x: &std::sync::atomic::AtomicU64) { x.store(1, Ordering::SeqCst); }",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("SeqCst"));
    }

    #[test]
    fn obs_modules_must_match_the_table() {
        // span.rs may use Release/Acquire…
        let ok = run(
            "crates/obs/src/span.rs",
            "fn f(x: &AtomicBool) -> bool { x.store(true, Ordering::Release); \
             x.load(Ordering::Acquire) }",
        );
        assert!(ok.is_empty(), "{ok:?}");
        // …but the old Relaxed load is exactly what the audit flags.
        let relaxed = run(
            "crates/obs/src/span.rs",
            "fn f(x: &AtomicBool) -> bool { x.load(Ordering::Relaxed) }",
        );
        assert_eq!(relaxed.len(), 1);
        assert!(relaxed[0].message.contains("allowlist table"));
        // metrics.rs is Relaxed-only.
        let acquire = run(
            "crates/obs/src/metrics.rs",
            "fn f(x: &AtomicU64) -> u64 { x.load(Ordering::Acquire) }",
        );
        assert_eq!(acquire.len(), 1);
        // A new obs module with atomics needs a table entry.
        let untabled = run(
            "crates/obs/src/ringbuf.rs",
            "fn f(x: &AtomicU64) -> u64 { x.load(Ordering::Relaxed) }",
        );
        assert_eq!(untabled.len(), 1);
        assert!(untabled[0].message.contains("no entry"));
    }

    #[test]
    fn non_obs_relaxed_is_fine_and_cmp_ordering_ignored() {
        let findings = run(
            "crates/search/src/engine.rs",
            "fn f(x: &AtomicU64, a: u32, b: u32) -> std::cmp::Ordering {\n\
                 x.fetch_add(1, Ordering::Relaxed);\n\
                 match a.cmp(&b) { Ordering::Less => a.cmp(&b), o => o }\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn inline_allow_covers_a_justified_seqcst() {
        let findings = run(
            "crates/core/src/lib.rs",
            "fn f(x: &AtomicU64) {\n\
                 // single-writer init fence; see DESIGN.md §9\n\
                 // treesim-lint: allow(atomics-audit)\n\
                 x.store(1, Ordering::SeqCst);\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let findings = run(
            "crates/obs/src/span.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(x: &AtomicBool) { x.store(true, Ordering::SeqCst); }\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
