//! `doc-coverage`: every `pub` item in a library crate carries a doc
//! comment.
//!
//! Checked items: `pub fn` / `struct` / `enum` / `trait` / `const` /
//! `static` / `type` / `union` / `mod` and `pub` struct fields.
//! `pub(crate)` / `pub(super)` are not public API and are skipped, as are
//! `pub use` re-exports (their targets are checked where they are
//! defined). A `pub mod name;` declaration is satisfied by either a
//! `///` comment at the declaration or inner `//!` docs at the top of the
//! module file (the house style) — the lint resolves `name.rs` /
//! `name/mod.rs` next to the declaring file.

use std::path::Path;

use super::{is_library_src, Lint};
use crate::lex::TokenKind;
use crate::lint::{Finding, SourceFile};

/// Keywords introducing a documentable item after `pub`.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "const", "static", "type", "union", "unsafe", "async",
    "extern",
];

/// The `doc-coverage` pass.
#[derive(Debug, Default)]
pub struct DocCoverage {
    /// Filesystem root for resolving `pub mod name;` declarations; tests
    /// leave it unset and exercise the unresolved path.
    pub root: Option<std::path::PathBuf>,
}

impl Lint for DocCoverage {
    fn id(&self) -> &'static str {
        "doc-coverage"
    }

    fn description(&self) -> &'static str {
        "every pub item in library crates carries a doc comment"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Finding> {
        if !is_library_src(&file.path) {
            return Vec::new();
        }
        let mut findings = Vec::new();
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if !t.is_ident("pub") || file.in_test_code(t.start) {
                continue;
            }
            let Some(n1) = file.next_code(i + 1) else {
                continue;
            };
            let next = &file.tokens[n1];
            if next.is_punct('(') {
                continue; // pub(crate) / pub(super): not public API
            }
            if next.kind != TokenKind::Ident {
                continue;
            }
            let item = if next.value == "use" {
                continue; // re-exports document at the definition site
            } else if next.value == "mod" {
                "mod"
            } else if ITEM_KEYWORDS.contains(&next.value.as_str()) {
                "item"
            } else {
                // `pub name: Type` — a struct field.
                match file.next_code(n1 + 1) {
                    Some(n2) if file.tokens[n2].is_punct(':') => "field",
                    _ => continue,
                }
            };
            if has_preceding_doc(file, i) {
                continue;
            }
            if item == "mod" && self.mod_has_inner_docs(file, n1) {
                continue;
            }
            let what = match item {
                "mod" => {
                    let name = file
                        .next_code(n1 + 1)
                        .map_or(String::new(), |n2| file.tokens[n2].value.clone());
                    format!("pub mod {name} (no /// here and no //! in the module file)")
                }
                "field" => format!("pub field `{}`", next.value),
                _ => format!("pub {} `{}`", next.value, item_name(file, n1)),
            };
            findings.extend(file.finding(self.id(), t, format!("{what} is missing a doc comment")));
        }
        findings
    }
}

impl DocCoverage {
    /// For `pub mod <name> ;` at keyword index `mod_idx`, resolve the
    /// module file next to `file` and check it starts with `//!` docs.
    fn mod_has_inner_docs(&self, file: &SourceFile, mod_idx: usize) -> bool {
        let Some(root) = &self.root else { return false };
        let Some(name_idx) = file.next_code(mod_idx + 1) else {
            return false;
        };
        let name = &file.tokens[name_idx].value;
        // Only the declaration form `pub mod name;` resolves to a file.
        if !file
            .next_code(name_idx + 1)
            .is_some_and(|s| file.tokens[s].is_punct(';'))
        {
            return false;
        }
        let dir = Path::new(&file.path).parent().unwrap_or(Path::new(""));
        for candidate in [
            dir.join(format!("{name}.rs")),
            dir.join(name).join("mod.rs"),
        ] {
            if let Ok(src) = std::fs::read_to_string(root.join(&candidate)) {
                let tokens = crate::lex::lex(&src);
                return tokens.first().is_some_and(|t| {
                    t.kind == TokenKind::DocComment
                        && (t.value.starts_with("//!") || t.value.starts_with("/*!"))
                });
            }
        }
        false
    }
}

/// Whether the item starting at token index `pub_idx` has a doc comment
/// directly above (attributes like `#[derive(…)]` may sit between).
fn has_preceding_doc(file: &SourceFile, pub_idx: usize) -> bool {
    let mut i = pub_idx;
    while i > 0 {
        i -= 1;
        let t = &file.tokens[i];
        match t.kind {
            TokenKind::DocComment => return true,
            TokenKind::Comment => continue,
            TokenKind::Punct if t.is_punct(']') => {
                // Skip one attribute group backwards: `#[ … ]`.
                let mut depth = 1usize;
                while i > 0 && depth > 0 {
                    i -= 1;
                    if file.tokens[i].is_punct(']') {
                        depth += 1;
                    } else if file.tokens[i].is_punct('[') {
                        depth -= 1;
                    }
                }
                // Consume the leading `#` (and inner-attribute `!`).
                while i > 0
                    && (file.tokens[i - 1].is_punct('#') || file.tokens[i - 1].is_punct('!'))
                {
                    i -= 1;
                }
            }
            _ => return false,
        }
    }
    false
}

/// The name of the item whose first keyword is at code index `kw_idx`
/// (skips qualifier keywords: `pub unsafe fn name`).
fn item_name(file: &SourceFile, kw_idx: usize) -> String {
    let mut i = kw_idx;
    loop {
        let Some(n) = file.next_code(i + 1) else {
            return String::new();
        };
        let t = &file.tokens[n];
        if t.kind == TokenKind::Ident && !ITEM_KEYWORDS.contains(&t.value.as_str()) {
            return t.value.clone();
        }
        if t.kind != TokenKind::Ident && !t.is_punct('"') {
            return String::new(); // `extern "C" fn` etc. — keep scanning past strings
        }
        i = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::SourceFile;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        DocCoverage::default().check_file(&SourceFile::parse(path, src))
    }

    #[test]
    fn documented_items_pass() {
        let findings = run(
            "crates/tree/src/arena.rs",
            "/// A tree.\n\
             #[derive(Debug, Clone)]\n\
             pub struct Tree {\n\
                 /// Node count.\n\
                 pub len: usize,\n\
                 private: u32,\n\
             }\n\
             /// Builds.\n\
             pub fn build() -> Tree { todo_impl() }\n\
             /// Speed.\n\
             pub const FAST: bool = true;\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn missing_docs_are_flagged_per_item() {
        let findings = run(
            "crates/histogram/src/lib.rs",
            "pub struct Histogram {\n\
                 pub bins: usize,\n\
             }\n\
             pub fn build() {}\n\
             pub mod helpers;\n",
        );
        assert_eq!(findings.len(), 4, "{findings:?}");
        assert!(findings[0].message.contains("pub struct `Histogram`"));
        assert!(findings[1].message.contains("pub field `bins`"));
        assert!(findings[2].message.contains("pub fn `build`"));
        assert!(findings[3].message.contains("pub mod helpers"));
    }

    #[test]
    fn restricted_visibility_and_reexports_are_skipped() {
        let findings = run(
            "crates/search/src/lib.rs",
            "pub(crate) fn internal() {}\n\
             pub(super) struct Hidden;\n\
             pub use engine::Engine;\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn doc_must_be_adjacent_not_anywhere() {
        let findings = run(
            "crates/edit/src/lib.rs",
            "/// Doc for a.\n\
             pub fn a() {}\n\
             pub fn b() {}\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`b`"));
    }

    #[test]
    fn qualifier_keywords_are_skipped_in_names() {
        let findings = run(
            "crates/core/src/lib.rs",
            "pub unsafe fn danger() {}\npub async fn later() {}\n",
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("`danger`"));
        assert!(findings[1].message.contains("`later`"));
    }

    #[test]
    fn inline_allow_and_test_code() {
        let findings = run(
            "crates/obs/src/lib.rs",
            "// treesim-lint: allow(doc-coverage)\n\
             pub fn undocumented_but_allowed() {}\n\
             #[cfg(test)]\nmod tests { pub fn helper() {} }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn mod_with_inner_docs_resolves_via_root() {
        let dir = std::env::temp_dir().join("treesim-xtask-doc-test");
        let src_dir = dir.join("crates/tree/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("documented.rs"),
            "//! Inner docs.\npub fn x() {}\n",
        )
        .unwrap();
        std::fs::write(src_dir.join("bare.rs"), "pub fn y() {}\n").unwrap();
        let mut lint = DocCoverage {
            root: Some(dir.clone()),
        };
        let file = SourceFile::parse(
            "crates/tree/src/lib.rs",
            "pub mod documented;\npub mod bare;\n",
        );
        let findings = lint.check_file(&file);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("pub mod bare"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
