//! `happens-before`: atomic Release/Acquire pairing and publication-role
//! enforcement, workspace-wide.
//!
//! The atomics-audit pass checks that each `Ordering` is *permitted* in
//! its module; this pass checks that orderings *cooperate*. It resolves
//! every atomic field/static declaration (`name: AtomicU64`,
//! `static FLAG: AtomicBool`, …) in `crates/*/src` to its store/load/rmw
//! sites across the whole workspace (sites are keyed by the declared
//! name, so `self.sequence.fetch_add(…)` in any file counts against the
//! `sequence` field), then enforces:
//!
//! 1. **Pairing** — a `Release`/`AcqRel` store with no
//!    `Acquire`-or-stronger load partner on the same atomic is an
//!    orphaned publication (nobody can ever synchronize with it), and an
//!    `Acquire` load with no `Release`-class store partner is an orphaned
//!    subscription. Both fail analyze.
//! 2. **Roles** — every atomic declared in `crates/obs/src` must carry a
//!    role in its module docs (the same place the atomics-audit table
//!    points reviewers at):
//!
//!    ```text
//!    //! atomic-role: SINK_ACTIVE = publish — justification…
//!    ```
//!
//!    Roles: `publish` (the atomic guards other memory: every store must
//!    be `Release`-or-stronger and every load `Acquire`-or-stronger — a
//!    `Relaxed` access may observe the flag without the published data),
//!    `counter` (monotone tally or id source: RMWs are unique/monotone
//!    under `Relaxed`, nothing else travels through the cell), and `cell`
//!    (an independent best-effort value: plain `Relaxed` store/load is
//!    the contract).
//!
//! Identity is by declared name: two atomics with the same field name
//! share one entry (an over-approximation that merges, e.g., every
//! `value` cell in `metrics.rs` — sound for pairing, which only ever
//! *adds* partners). Receivers the scanner cannot resolve to a declared
//! atomic (loop variables, generic parameters) are skipped unless listed
//! in [`RECEIVER_ALIASES`]. Escape hatches: inline
//! `// treesim-lint: allow(happens-before)` or an `analyze.allow` entry.

use std::collections::BTreeMap;

use super::Lint;
use crate::lex::TokenKind;
use crate::lint::{Finding, Severity, SourceFile};

/// Method names that access an atomic. Split by what they do to the cell:
/// `load` only reads, `store` only writes, everything else is an RMW
/// (reads and writes atomically).
const READ_ONLY: &[&str] = &["load"];
const WRITE_ONLY: &[&str] = &["store"];
const RMW: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Per-file receiver aliases: `(path, site name, declared atomic name)`.
/// Maps the handful of loop/binding variables that hold `&Atomic*`
/// references onto the field they borrow from, so their accesses count.
const RECEIVER_ALIASES: &[(&str, &str, &str)] = &[
    ("crates/obs/src/metrics.rs", "bucket", "buckets"),
    ("crates/obs/src/metrics.rs", "exemplar", "exemplars"),
    ("crates/obs/src/recorder.rs", "per_kind", "dropped"),
];

/// Valid `atomic-role:` values.
const ROLES: &[&str] = &["publish", "counter", "cell"];

/// A source location captured at scan time (findings are emitted in
/// `finish`, after every file has been read).
#[derive(Debug, Clone)]
struct SiteRef {
    path: String,
    line: u32,
    col: u32,
    snippet: String,
    /// Inline `treesim-lint: allow(happens-before)` present at the site.
    allowed: bool,
}

/// One atomic access site, pre-resolution.
#[derive(Debug)]
struct AccessSite {
    at: SiteRef,
    /// Receiver candidates, nearest ident first (`get`, `dropped`, `self`).
    receivers: Vec<String>,
    /// The accessor method (`store`, `load`, `fetch_add`, …).
    method: String,
    /// `Ordering::X` names found in the call arguments.
    orderings: Vec<String>,
}

/// One `atomic-role:` directive.
#[derive(Debug)]
struct RoleDecl {
    at: SiteRef,
    name: String,
    role: String,
}

/// One atomic declaration (`name: AtomicU64` field/static/param).
#[derive(Debug)]
struct AtomicDecl {
    at: SiteRef,
    name: String,
}

/// The `happens-before` pass.
#[derive(Debug, Default)]
pub struct HappensBefore {
    decls: Vec<AtomicDecl>,
    roles: Vec<RoleDecl>,
    sites: Vec<AccessSite>,
}

const LINT_ID: &str = "happens-before";

impl HappensBefore {
    fn site_ref(&self, file: &SourceFile, token: &crate::lex::Token) -> SiteRef {
        SiteRef {
            path: file.path.clone(),
            line: token.line,
            col: token.col,
            snippet: file.line_text(token.line).to_owned(),
            allowed: file.allowed_inline(LINT_ID, token.line),
        }
    }

    /// Scans declarations: `ident :` followed (within a short window of
    /// type tokens) by an `Atomic*` ident.
    fn scan_decls(&mut self, file: &SourceFile) {
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.kind != TokenKind::Ident || file.in_test_code(t.start) {
                continue;
            }
            let Some(c) = file.next_code(i + 1) else {
                continue;
            };
            if !file.tokens[c].is_punct(':') {
                continue;
            }
            // Skip `::` paths and struct-literal field inits (`name:` at a
            // call site is a field init, but those carry values, not
            // types, so the Atomic* window below rarely matches; `::` is
            // the case that must be excluded explicitly).
            if file
                .next_code(c + 1)
                .is_some_and(|j| file.tokens[j].is_punct(':'))
            {
                continue;
            }
            if file
                .prev_code(i)
                .is_some_and(|j| file.tokens[j].is_punct(':'))
            {
                continue;
            }
            // Window: up to 8 type tokens before a terminator.
            let mut j = c + 1;
            for _ in 0..8 {
                let Some(k) = file.next_code(j) else {
                    break;
                };
                let tok = &file.tokens[k];
                if tok.kind == TokenKind::Ident && tok.value.starts_with("Atomic") {
                    self.decls.push(AtomicDecl {
                        at: self.site_ref(file, t),
                        name: t.value.clone(),
                    });
                    break;
                }
                let terminator = [',', ';', '=', '{', '}', '(', ')']
                    .iter()
                    .any(|&p| tok.is_punct(p));
                if terminator {
                    break;
                }
                j = k + 1;
            }
        }
    }

    /// Scans `atomic-role:` directives in doc comments.
    fn scan_roles(&mut self, file: &SourceFile) {
        for t in &file.tokens {
            if t.kind != TokenKind::DocComment && t.kind != TokenKind::Comment {
                continue;
            }
            for line in t.value.lines() {
                let Some(rest) = line.split("atomic-role:").nth(1) else {
                    continue;
                };
                let mut parts = rest.splitn(2, '=');
                let name = parts.next().unwrap_or("").trim().to_owned();
                let tail = parts.next().unwrap_or("").trim();
                let role = tail
                    .split(|ch: char| !ch.is_ascii_alphanumeric() && ch != '_')
                    .next()
                    .unwrap_or("")
                    .to_owned();
                self.roles.push(RoleDecl {
                    at: self.site_ref(file, t),
                    name,
                    role,
                });
            }
        }
    }

    /// Scans access sites: `<receiver-chain> . <method> ( … )`.
    fn scan_sites(&mut self, file: &SourceFile) {
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.kind != TokenKind::Ident || file.in_test_code(t.start) {
                continue;
            }
            let method = t.value.as_str();
            if !READ_ONLY.contains(&method)
                && !WRITE_ONLY.contains(&method)
                && !RMW.contains(&method)
            {
                continue;
            }
            // Must be a method call: `. method (`.
            let Some(open) = file.next_code(i + 1) else {
                continue;
            };
            if !file.tokens[open].is_punct('(') {
                continue;
            }
            let Some(dot) = file.prev_code(i) else {
                continue;
            };
            if !file.tokens[dot].is_punct('.') {
                continue;
            }
            let receivers = receiver_chain(file, dot);
            if receivers.is_empty() {
                continue;
            }
            let orderings = call_orderings(file, open);
            self.sites.push(AccessSite {
                at: self.site_ref(file, t),
                receivers,
                method: method.to_owned(),
                orderings,
            });
        }
    }
}

/// Walks left from the `.` before an accessor method, collecting the
/// idents of the receiver chain (nearest first). Balanced `(…)`/`[…]`
/// groups and `?` are skipped, so `self.dropped.get(i)?.load(…)` yields
/// `["get", "dropped", "self"]`.
fn receiver_chain(file: &SourceFile, dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut at = dot;
    while chain.len() < 6 {
        let Some(j) = file.prev_code(at) else {
            break;
        };
        let t = &file.tokens[j];
        if t.kind == TokenKind::Ident {
            chain.push(t.value.clone());
            at = j;
        } else if t.is_punct('.') || t.is_punct('?') {
            at = j;
        } else if t.is_punct(')') || t.is_punct(']') {
            let close = if t.is_punct(')') { ')' } else { ']' };
            let open = if close == ')' { '(' } else { '[' };
            let mut depth = 1usize;
            let mut k = j;
            while depth > 0 {
                let Some(p) = file.prev_code(k) else {
                    return chain;
                };
                if file.tokens[p].is_punct(close) {
                    depth += 1;
                } else if file.tokens[p].is_punct(open) {
                    depth -= 1;
                }
                k = p;
            }
            at = k;
        } else {
            break;
        }
    }
    chain
}

/// Collects `Ordering :: X` names inside the balanced call parentheses
/// starting at `open`.
fn call_orderings(file: &SourceFile, open: usize) -> Vec<String> {
    let mut orderings = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    loop {
        let t = &file.tokens[i];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_ident("Ordering") {
            if let Some(v) = file
                .next_code(i + 1)
                .filter(|&a| file.tokens[a].is_punct(':'))
                .and_then(|a| file.next_code(a + 1))
                .filter(|&b| file.tokens[b].is_punct(':'))
                .and_then(|b| file.next_code(b + 1))
            {
                let name = &file.tokens[v];
                if name.kind == TokenKind::Ident {
                    orderings.push(name.value.clone());
                }
            }
        }
        let Some(next) = file.next_code(i + 1) else {
            break;
        };
        i = next;
    }
    orderings
}

/// Whether the orderings contain a release-class member (counting SeqCst,
/// which the atomics-audit pass polices separately).
fn has_release(orderings: &[String]) -> bool {
    orderings
        .iter()
        .any(|o| o == "Release" || o == "AcqRel" || o == "SeqCst")
}

/// Whether the orderings contain an acquire-class member.
fn has_acquire(orderings: &[String]) -> bool {
    orderings
        .iter()
        .any(|o| o == "Acquire" || o == "AcqRel" || o == "SeqCst")
}

/// Builds a finding from a scan-time site reference (inline allows were
/// captured at scan time).
fn finding_at(at: &SiteRef, message: String) -> Option<Finding> {
    if at.allowed {
        return None;
    }
    Some(Finding {
        lint: LINT_ID,
        severity: Severity::Error,
        path: at.path.clone(),
        line: at.line,
        col: at.col,
        message,
        snippet: at.snippet.clone(),
    })
}

impl Lint for HappensBefore {
    fn id(&self) -> &'static str {
        LINT_ID
    }

    fn description(&self) -> &'static str {
        "Release stores pair with Acquire loads; obs atomics declare a publish/counter/cell role"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Finding> {
        // The analyzer's own source is out of scope: its docs and test
        // fixtures discuss the very directives this pass scans for.
        if !file.path.starts_with("crates/")
            || !file.path.contains("/src/")
            || file.path.starts_with("crates/xtask/")
        {
            return Vec::new();
        }
        self.scan_decls(file);
        self.scan_roles(file);
        self.scan_sites(file);
        Vec::new()
    }

    fn finish(&mut self) -> Vec<Finding> {
        let mut findings = Vec::new();

        // Atomic registry by declared name.
        let mut atomics: BTreeMap<&str, Vec<&AtomicDecl>> = BTreeMap::new();
        for d in &self.decls {
            atomics.entry(d.name.as_str()).or_default().push(d);
        }

        // Role table by atomic name; conflicts and unknown targets are
        // findings in their own right.
        let mut roles: BTreeMap<&str, &RoleDecl> = BTreeMap::new();
        for r in &self.roles {
            if !ROLES.contains(&r.role.as_str()) {
                findings.extend(finding_at(
                    &r.at,
                    format!(
                        "atomic-role for `{}` declares unknown role `{}` (valid: {})",
                        r.name,
                        r.role,
                        ROLES.join(", ")
                    ),
                ));
                continue;
            }
            if !atomics.contains_key(r.name.as_str()) {
                findings.extend(finding_at(
                    &r.at,
                    format!(
                        "atomic-role names `{}`, but no atomic field/static with that name is \
                         declared — remove the stale directive or fix the name",
                        r.name
                    ),
                ));
                continue;
            }
            match roles.get(r.name.as_str()) {
                Some(prev) if prev.role != r.role => {
                    findings.extend(finding_at(
                        &r.at,
                        format!(
                            "atomic-role for `{}` conflicts: `{}` here vs `{}` at {}:{}",
                            r.name, r.role, prev.role, prev.at.path, prev.at.line
                        ),
                    ));
                }
                Some(_) => {}
                None => {
                    roles.insert(r.name.as_str(), r);
                }
            }
        }

        // Every obs atomic needs a role.
        for (name, decls) in &atomics {
            if roles.contains_key(name) {
                continue;
            }
            for d in decls {
                if d.at.path.starts_with("crates/obs/src/") {
                    findings.extend(finding_at(
                        &d.at,
                        format!(
                            "atomic `{name}` in crates/obs has no `atomic-role:` directive in \
                             its module docs — declare `publish`, `counter` or `cell` with a \
                             justification (see DESIGN.md §14)"
                        ),
                    ));
                }
            }
        }

        // Resolve access sites to atomics.
        let mut resolved: BTreeMap<&str, Vec<&AccessSite>> = BTreeMap::new();
        for site in &self.sites {
            let direct = site
                .receivers
                .iter()
                .find(|r| atomics.contains_key(r.as_str()));
            let via_alias = site.receivers.iter().find_map(|r| {
                RECEIVER_ALIASES
                    .iter()
                    .find(|(path, from, _)| *path == site.at.path && from == r)
                    .map(|(_, _, to)| *to)
            });
            let Some(name) = direct.map(String::as_str).or(via_alias) else {
                continue;
            };
            resolved.entry(name).or_default().push(site);
        }

        // Role rules + pairing rules per atomic.
        for (name, sites) in &resolved {
            let role = roles.get(name).map(|r| r.role.as_str());
            let mut release_writes = 0usize;
            let mut acquire_reads = 0usize;
            for site in sites {
                let writes = !READ_ONLY.contains(&site.method.as_str());
                let reads = !WRITE_ONLY.contains(&site.method.as_str());
                if site.orderings.is_empty() {
                    // Ordering passed as a variable — nothing to check
                    // statically; the model checker covers these.
                    continue;
                }
                if writes && has_release(&site.orderings) {
                    release_writes += 1;
                }
                if reads && has_acquire(&site.orderings) {
                    acquire_reads += 1;
                }
                if role == Some("publish") {
                    if writes && !has_release(&site.orderings) {
                        findings.extend(finding_at(
                            &site.at,
                            format!(
                                "`{}` on publish-role atomic `{name}` without a Release-class \
                                 ordering — a Relaxed store can publish the flag before the \
                                 data it guards is visible",
                                site.method
                            ),
                        ));
                    }
                    if reads && !has_acquire(&site.orderings) {
                        findings.extend(finding_at(
                            &site.at,
                            format!(
                                "`{}` on publish-role atomic `{name}` without an Acquire-class \
                                 ordering — a Relaxed load can observe the flag without the \
                                 data it guards",
                                site.method
                            ),
                        ));
                    }
                }
            }
            if release_writes > 0 && acquire_reads == 0 {
                for site in sites {
                    let writes = !READ_ONLY.contains(&site.method.as_str());
                    if writes && has_release(&site.orderings) {
                        findings.extend(finding_at(
                            &site.at,
                            format!(
                                "orphaned Release store: atomic `{name}` has no \
                                 Acquire-or-stronger load anywhere in the workspace, so this \
                                 publication can never synchronize with a reader — pair it or \
                                 downgrade to Relaxed with a comment"
                            ),
                        ));
                    }
                }
            }
            if acquire_reads > 0 && release_writes == 0 {
                for site in sites {
                    let reads = !WRITE_ONLY.contains(&site.method.as_str());
                    if reads && has_acquire(&site.orderings) {
                        findings.extend(finding_at(
                            &site.at,
                            format!(
                                "orphaned Acquire load: atomic `{name}` has no Release-class \
                                 store anywhere in the workspace, so there is nothing to \
                                 synchronize with — pair it or downgrade to Relaxed with a \
                                 comment"
                            ),
                        ));
                    }
                }
            }
        }

        self.decls.clear();
        self.roles.clear();
        self.sites.clear();
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let mut lint = HappensBefore::default();
        for (path, src) in files {
            assert!(lint.check_file(&SourceFile::parse(path, src)).is_empty());
        }
        lint.finish()
    }

    #[test]
    fn orphaned_release_store_is_flagged() {
        let findings = run(&[(
            "crates/search/src/engine.rs",
            "struct S { ready: AtomicBool }\n\
             impl S {\n\
                 fn publish(&self) { self.ready.store(true, Ordering::Release); }\n\
                 fn peek(&self) -> bool { self.ready.load(Ordering::Relaxed) }\n\
             }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("orphaned Release store"));
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn orphaned_acquire_load_is_flagged() {
        let findings = run(&[(
            "crates/search/src/engine.rs",
            "static READY: AtomicBool = AtomicBool::new(false);\n\
             fn wait() -> bool { READY.load(Ordering::Acquire) }\n\
             fn set() { READY.store(true, Ordering::Relaxed); }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("orphaned Acquire load"));
    }

    #[test]
    fn pairing_resolves_across_files() {
        let findings = run(&[
            (
                "crates/search/src/a.rs",
                "pub struct S { pub ready: AtomicBool }\n\
                 impl S { pub fn publish(&self) { self.ready.store(true, Ordering::Release); } }\n",
            ),
            (
                "crates/search/src/b.rs",
                "fn check(s: &super::a::S) -> bool { s.ready.load(Ordering::Acquire) }\n",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn pre_pr3_sink_active_relaxed_load_is_flagged_statically() {
        // The historical bug: install publishes the sink slot with a
        // Release store, but the hot-path guard read it back Relaxed.
        let findings = run(&[(
            "crates/obs/src/span.rs",
            "//! atomic-role: SINK_ACTIVE = publish — guards the sink slot\n\
             static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);\n\
             fn install() { SINK_ACTIVE.store(true, Ordering::Release); }\n\
             fn sink_active() -> bool { SINK_ACTIVE.load(Ordering::Relaxed) }\n",
        )]);
        assert!(
            findings.iter().any(|f| f.message.contains("publish-role")
                && f.message.contains("Relaxed load")
                || f.message.contains("without an Acquire-class")),
            "{findings:?}"
        );
        // …and with the Acquire fix in place the file is clean.
        let fixed = run(&[(
            "crates/obs/src/span.rs",
            "//! atomic-role: SINK_ACTIVE = publish — guards the sink slot\n\
             static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);\n\
             fn install() { SINK_ACTIVE.store(true, Ordering::Release); }\n\
             fn sink_active() -> bool { SINK_ACTIVE.load(Ordering::Acquire) }\n",
        )]);
        assert!(fixed.is_empty(), "{fixed:?}");
    }

    #[test]
    fn obs_atomics_require_a_role() {
        let findings = run(&[(
            "crates/obs/src/ring.rs",
            "struct R { seq: AtomicU64 }\n\
             impl R { fn next(&self) -> u64 { self.seq.fetch_add(1, Ordering::Relaxed) } }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no `atomic-role:`"));
    }

    #[test]
    fn counter_role_accepts_relaxed_rmw_and_chained_receivers() {
        let findings = run(&[(
            "crates/obs/src/ring.rs",
            "//! atomic-role: seq = counter — fetch_add RMW, unique under Relaxed\n\
             //! atomic-role: dropped = counter — per-kind tallies\n\
             struct R { seq: AtomicU64, dropped: [AtomicU64; 4] }\n\
             impl R {\n\
                 fn next(&self) -> u64 { self.seq.fetch_add(1, Ordering::Relaxed) }\n\
                 fn read(&self, i: usize) -> u64 {\n\
                     self.dropped.get(i).map(|d| d.load(Ordering::Relaxed)).unwrap_or(0)\n\
                 }\n\
                 fn bump(&self, i: usize) {\n\
                     if let Some(x) = self.dropped.get(i) { x.fetch_add(1, Ordering::Relaxed); }\n\
                 }\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn stale_and_conflicting_roles_are_flagged() {
        let stale = run(&[(
            "crates/obs/src/ring.rs",
            "//! atomic-role: gone = counter — no such atomic\n\
             //! atomic-role: seq = counter — ok\n\
             struct R { seq: AtomicU64 }\n",
        )]);
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert!(stale[0].message.contains("stale"));

        let conflict = run(&[(
            "crates/obs/src/ring.rs",
            "//! atomic-role: seq = counter — here\n\
             //! atomic-role: seq = publish — and also here\n\
             struct R { seq: AtomicU64 }\n",
        )]);
        assert_eq!(conflict.len(), 1, "{conflict:?}");
        assert!(conflict[0].message.contains("conflicts"));
    }

    #[test]
    fn inline_allow_and_test_code_are_respected() {
        let findings = run(&[(
            "crates/search/src/engine.rs",
            "static READY: AtomicBool = AtomicBool::new(false);\n\
             // deliberate: the partner lives in generated code\n\
             // treesim-lint: allow(happens-before)\n\
             fn publish() { READY.store(true, Ordering::Release); }\n\
             #[cfg(test)]\n\
             mod tests { fn t() { READY.load(Ordering::Acquire); } }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
