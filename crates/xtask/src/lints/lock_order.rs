//! `lock-order`: may-hold-while-acquiring analysis over the workspace's
//! named mutexes — cycles are potential deadlocks.
//!
//! The pass resolves every `Mutex<…>`/`RwLock<…>` declaration (struct
//! field, static, parameter) plus two indirections the obs crate uses —
//! poison-recovering wrapper fns ([`WRAPPER_FNS`]: `recover(lock)` is an
//! acquisition of its argument) and accessor fns returning a lock
//! (`fn ring() -> &'static Mutex<…>`: `ring().lock()` is an acquisition
//! of `ring`) — then walks each function body tracking which locks may
//! still be held when another is acquired:
//!
//! * a guard bound in a `let`/`if`/`while`/`match`/`for` statement is
//!   held to the end of the enclosing block;
//! * a temporary guard (`*slot().write()… = …;`) is released at the
//!   statement's `;`;
//! * calls propagate: `may_acquire(f)` is the fixpoint of direct
//!   acquisitions plus callees' sets (methods and free fns are resolved
//!   by name — an over-approximation that merges every `emit` method,
//!   which is exactly right for dyn-dispatch sinks).
//!
//! Lock identity is `(file, name)`, canonicalized through
//! [`LOCK_ALIASES`] so a loop variable borrowing a shard counts against
//! the shard vector. Edges `A → B` mean "B may be acquired while A is
//! held"; any cycle (including a self-edge, i.e. re-acquiring a held
//! non-reentrant lock) is reported as a potential deadlock. Escape
//! hatches: inline `// treesim-lint: allow(lock-order)` on the acquiring
//! site the finding points at, or an `analyze.allow` entry.

use std::collections::{BTreeMap, BTreeSet};

use super::Lint;
use crate::lex::TokenKind;
use crate::lint::{Finding, Severity, SourceFile};

/// Fns whose call is itself a lock acquisition of their argument.
const WRAPPER_FNS: &[&str] = &["recover"];

/// Lock-acquiring method names.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Call names never resolved to workspace fns: std containers and
/// iterator adapters shadow these (`guard.slots.len()` is `Vec::len`,
/// `.count()` is `Iterator::count`), so a same-named workspace fn that
/// takes locks would fabricate edges. Intentional same-name dispatch to
/// one of these is invisible to the pass — pick distinct names for
/// lock-taking helpers.
const UNRESOLVED_CALLS: &[&str] = &[
    "len",
    "is_empty",
    "count",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "get",
    "get_mut",
    "get_or_init",
    "insert",
    "remove",
    "push",
    "push_back",
    "pop",
    "pop_front",
    "sum",
    "min",
    "max",
    "drain",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "new",
    "default",
    "to_owned",
    "to_string",
    "map",
    "filter",
    "collect",
    "expect",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "take",
    "retain",
    "fold",
];

/// Canonical-name aliases: `(path, site name, canonical lock name)`.
/// Unifies loop/binding variables and `static` cell names with the
/// accessor/field the rest of the file uses.
const LOCK_ALIASES: &[(&str, &str, &str)] = &[
    ("crates/obs/src/recorder.rs", "shard", "recorder.shards"),
    ("crates/obs/src/recorder.rs", "s", "recorder.shards"),
    ("crates/obs/src/span.rs", "SINK", "span.sink_slot"),
    ("crates/obs/src/trace.rs", "RING", "trace.ring"),
];

const LINT_ID: &str = "lock-order";

/// A captured source location (findings are emitted in `finish`).
#[derive(Debug, Clone)]
struct SiteRef {
    path: String,
    line: u32,
    col: u32,
    snippet: String,
    allowed: bool,
}

/// One event inside a function body, in source order.
#[derive(Debug)]
enum Ev {
    /// `{` — depth increases.
    Open,
    /// `}` — depth decreases; holds scoped deeper die.
    Close,
    /// `;` at the current depth — unbound temporaries die.
    Semi,
    /// A lock acquisition. `binds` = the statement starts with
    /// `let`/`if`/`while`/`match`/`for`, so the guard outlives the
    /// statement.
    Acquire {
        lock: String,
        at: SiteRef,
        binds: bool,
    },
    /// A call that may transitively acquire locks. `method` = invoked
    /// via `.`; `None` = path/UFCS call that could be either.
    Call { name: String, method: Option<bool> },
}

/// One scanned function body.
#[derive(Debug)]
struct FnBody {
    /// File the fn lives in — call resolution is same-file only, so a
    /// ubiquitous name (`new`, `get`) in another crate can't alias in.
    file: String,
    name: String,
    is_method: bool,
    events: Vec<Ev>,
}

/// The `lock-order` pass.
#[derive(Debug, Default)]
pub struct LockOrder {
    fns: Vec<FnBody>,
}

/// Per-file lock environment built in a first pass over the file.
#[derive(Debug, Default)]
struct LockEnv {
    /// site name → canonical name.
    names: BTreeMap<String, String>,
}

impl LockEnv {
    fn canonical(path: &str, name: &str) -> String {
        let stem = path
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or(path);
        format!("{stem}.{name}")
    }

    fn build(file: &SourceFile) -> LockEnv {
        let mut env = LockEnv::default();
        // Declarations: `name :` … `Mutex`/`RwLock` within a short window.
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.kind != TokenKind::Ident || file.in_test_code(t.start) {
                continue;
            }
            let Some(c) = file.next_code(i + 1) else {
                continue;
            };
            if !file.tokens[c].is_punct(':') {
                continue;
            }
            if file
                .next_code(c + 1)
                .is_some_and(|j| file.tokens[j].is_punct(':'))
                || file
                    .prev_code(i)
                    .is_some_and(|j| file.tokens[j].is_punct(':'))
            {
                continue;
            }
            let mut j = c + 1;
            for _ in 0..8 {
                let Some(k) = file.next_code(j) else {
                    break;
                };
                let tok = &file.tokens[k];
                if tok.is_ident("Mutex") || tok.is_ident("RwLock") {
                    env.names
                        .insert(t.value.clone(), Self::canonical(&file.path, &t.value));
                    break;
                }
                if [',', ';', '=', '{', '}', ')']
                    .iter()
                    .any(|&p| tok.is_punct(p))
                {
                    break;
                }
                j = k + 1;
            }
        }
        // Accessor fns: `fn name(…) -> … Mutex/RwLock<…>` — the fn name
        // itself becomes a lock name (`ring().lock()`).
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if !t.is_ident("fn") || file.in_test_code(t.start) {
                continue;
            }
            let Some(n) = file.next_code(i + 1) else {
                continue;
            };
            let name = &file.tokens[n];
            if name.kind != TokenKind::Ident {
                continue;
            }
            // Scan the signature (to the body `{` or a `;`) for a
            // `-> … Mutex/RwLock` return type.
            let mut j = n + 1;
            let mut saw_arrow = false;
            let mut returns_lock = false;
            while let Some(k) = file.next_code(j) {
                let tok = &file.tokens[k];
                if tok.is_punct('{') || tok.is_punct(';') {
                    break;
                }
                if tok.is_punct('-')
                    && file
                        .next_code(k + 1)
                        .is_some_and(|m| file.tokens[m].is_punct('>'))
                {
                    saw_arrow = true;
                }
                if saw_arrow && (tok.is_ident("Mutex") || tok.is_ident("RwLock")) {
                    returns_lock = true;
                }
                j = k + 1;
            }
            if returns_lock {
                env.names
                    .insert(name.value.clone(), Self::canonical(&file.path, &name.value));
            }
        }
        // File-scoped aliases.
        for (path, from, to) in LOCK_ALIASES {
            if *path == file.path {
                env.names.insert((*from).to_owned(), (*to).to_owned());
            }
        }
        env
    }
}

/// Walks left from a `.`/call site collecting the receiver chain idents,
/// skipping balanced `(…)`/`[…]` groups and `?` (same shape as the
/// happens-before scanner).
fn receiver_chain(file: &SourceFile, from: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut at = from;
    while chain.len() < 6 {
        let Some(j) = file.prev_code(at) else {
            break;
        };
        let t = &file.tokens[j];
        if t.kind == TokenKind::Ident {
            chain.push(t.value.clone());
            at = j;
        } else if t.is_punct('.') || t.is_punct('?') {
            at = j;
        } else if t.is_punct(')') || t.is_punct(']') {
            let (open, close) = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 1usize;
            let mut k = j;
            while depth > 0 {
                let Some(p) = file.prev_code(k) else {
                    return chain;
                };
                if file.tokens[p].is_punct(close) {
                    depth += 1;
                } else if file.tokens[p].is_punct(open) {
                    depth -= 1;
                }
                k = p;
            }
            at = k;
        } else {
            break;
        }
    }
    chain
}

/// Last ident inside the balanced parens opening at `open` that resolves
/// through `env` (for `recover(ring())`, `recover(shard)`).
fn wrapper_arg_lock(file: &SourceFile, open: usize, env: &LockEnv) -> Option<String> {
    let mut depth = 0usize;
    let mut i = open;
    let mut hit = None;
    loop {
        let t = &file.tokens[i];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident {
            if let Some(canon) = env.names.get(&t.value) {
                hit = Some(canon.clone());
            }
        }
        i = file.next_code(i + 1)?;
    }
    hit
}

impl LockOrder {
    /// Scans `file` for function bodies and their lock/call events.
    fn scan(&mut self, file: &SourceFile, env: &LockEnv) {
        let code: Vec<usize> = (0..file.tokens.len())
            .filter(|&i| !file.tokens[i].is_trivia() && !file.in_test_code(file.tokens[i].start))
            .collect();
        let mut k = 0usize;
        let mut impl_depth: Option<usize> = None;
        let mut depth = 0usize;
        while k < code.len() {
            let i = code[k];
            let t = &file.tokens[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if impl_depth == Some(depth) {
                    impl_depth = None;
                }
            } else if t.is_ident("impl") && impl_depth.is_none() {
                impl_depth = Some(depth);
            } else if t.is_ident("fn") {
                let Some(&ni) = code.get(k + 1) else {
                    break;
                };
                let name_tok = &file.tokens[ni];
                if name_tok.kind == TokenKind::Ident {
                    if let Some(next_k) = self.scan_fn(
                        file,
                        env,
                        &code,
                        k + 2,
                        name_tok.value.clone(),
                        impl_depth.is_some(),
                    ) {
                        k = next_k;
                        continue;
                    }
                }
            }
            k += 1;
        }
    }

    /// Scans one fn starting after its name (index `k` into `code`).
    /// Returns the code index just past the body, or `None` for a
    /// bodyless declaration (trait method signature).
    #[allow(clippy::too_many_arguments)]
    fn scan_fn(
        &mut self,
        file: &SourceFile,
        env: &LockEnv,
        code: &[usize],
        mut k: usize,
        name: String,
        is_method: bool,
    ) -> Option<usize> {
        // Skip the signature past the body `{` (or bail at `;`).
        loop {
            let &i = code.get(k)?;
            let t = &file.tokens[i];
            k += 1;
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') {
                return None;
            }
        }
        let mut events = Vec::new();
        let mut depth = 0usize;
        // Kind of the current statement: true when it starts with a
        // binding/scrutinee keyword, so guards outlive the statement.
        let mut stmt_binds = false;
        let mut stmt_fresh = true;
        while let Some(&i) = code.get(k) {
            let t = &file.tokens[i];
            if stmt_fresh && t.kind == TokenKind::Ident {
                stmt_binds = matches!(t.value.as_str(), "let" | "if" | "while" | "match" | "for");
                stmt_fresh = false;
            }
            if t.is_punct('{') {
                depth += 1;
                events.push(Ev::Open);
                stmt_fresh = true;
            } else if t.is_punct('}') {
                if depth == 0 {
                    // End of the fn body.
                    self.fns.push(FnBody {
                        file: file.path.clone(),
                        name,
                        is_method,
                        events,
                    });
                    return Some(k + 1);
                }
                depth -= 1;
                events.push(Ev::Close);
                stmt_fresh = true;
            } else if t.is_punct(';') {
                events.push(Ev::Semi);
                stmt_fresh = true;
                stmt_binds = false;
            } else if t.kind == TokenKind::Ident {
                let followed_by_paren = code
                    .get(k + 1)
                    .is_some_and(|&j| file.tokens[j].is_punct('('));
                let prev = (k > 0).then(|| &file.tokens[code[k - 1]]);
                let after_dot = prev.as_ref().is_some_and(|p| p.is_punct('.'));
                let after_path = prev.as_ref().is_some_and(|p| p.is_punct(':'));
                let after_fn = prev.as_ref().is_some_and(|p| p.is_ident("fn"));
                if followed_by_paren && !after_fn {
                    let method = t.value.as_str();
                    if after_dot && ACQUIRE_METHODS.contains(&method) {
                        // `.lock()/.read()/.write()` — receiver must be a
                        // known lock name.
                        let chain = receiver_chain(file, code[k - 1]);
                        if let Some(canon) = chain.iter().find_map(|r| env.names.get(r)).cloned() {
                            events.push(Ev::Acquire {
                                lock: canon,
                                at: site_ref(file, t),
                                binds: stmt_binds,
                            });
                        }
                    } else if !after_dot && !after_path && WRAPPER_FNS.contains(&method) {
                        if let Some(&open) = code.get(k + 1) {
                            if let Some(canon) = wrapper_arg_lock(file, open, env) {
                                events.push(Ev::Acquire {
                                    lock: canon,
                                    at: site_ref(file, t),
                                    binds: stmt_binds,
                                });
                            }
                        }
                    } else if !t.is_ident("fn") && !UNRESOLVED_CALLS.contains(&method) {
                        let kind = if after_dot {
                            Some(true)
                        } else if after_path {
                            None
                        } else {
                            Some(false)
                        };
                        events.push(Ev::Call {
                            name: t.value.clone(),
                            method: kind,
                        });
                    }
                }
            }
            k += 1;
        }
        // Unterminated body (truncated file): keep what we have.
        self.fns.push(FnBody {
            file: file.path.clone(),
            name,
            is_method,
            events,
        });
        None
    }
}

fn site_ref(file: &SourceFile, token: &crate::lex::Token) -> SiteRef {
    SiteRef {
        path: file.path.clone(),
        line: token.line,
        col: token.col,
        snippet: file.line_text(token.line).to_owned(),
        allowed: file.allowed_inline(LINT_ID, token.line),
    }
}

fn finding_at(at: &SiteRef, message: String) -> Option<Finding> {
    if at.allowed {
        return None;
    }
    Some(Finding {
        lint: LINT_ID,
        severity: Severity::Error,
        path: at.path.clone(),
        line: at.line,
        col: at.col,
        message,
        snippet: at.snippet.clone(),
    })
}

/// A held lock during replay.
struct Hold {
    lock: String,
    depth: usize,
    binds: bool,
}

impl Lint for LockOrder {
    fn id(&self) -> &'static str {
        LINT_ID
    }

    fn description(&self) -> &'static str {
        "no cycles in the may-hold-while-acquiring graph over named Mutex/RwLock cells"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Finding> {
        // The analyzer's own source is out of scope (its docs and test
        // fixtures discuss lock idioms without taking any locks).
        if !file.path.starts_with("crates/")
            || !file.path.contains("/src/")
            || file.path.starts_with("crates/xtask/")
        {
            return Vec::new();
        }
        let env = LockEnv::build(file);
        self.scan(file, &env);
        Vec::new()
    }

    fn finish(&mut self) -> Vec<Finding> {
        let mut findings = Vec::new();

        // Per-fn direct acquisitions and call lists, indexed by position
        // in `self.fns`. Calls resolve to same-file fns only (plus the
        // method/free bucket split): the obs helper patterns — dyn
        // `sink.emit` dispatching to sinks defined in span.rs, `finalize`
        // feeding the ring accessor — are all same-file, while resolving
        // `new`/`get`/`insert` workspace-wide would merge every type's
        // constructor into one node and fabricate cycles.
        let mut direct: Vec<BTreeSet<String>> = Vec::with_capacity(self.fns.len());
        let mut calls: Vec<BTreeSet<(String, Option<bool>)>> = Vec::with_capacity(self.fns.len());
        let mut by_file: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (idx, f) in self.fns.iter().enumerate() {
            by_file.entry(f.file.as_str()).or_default().push(idx);
            let mut d = BTreeSet::new();
            let mut c = BTreeSet::new();
            for ev in &f.events {
                match ev {
                    Ev::Acquire { lock, .. } => {
                        d.insert(lock.clone());
                    }
                    Ev::Call { name, method } => {
                        c.insert((name.clone(), *method));
                    }
                    _ => {}
                }
            }
            direct.push(d);
            calls.push(c);
        }
        // Resolve a call event in `file` to the fn indices it may
        // dispatch to.
        let resolve = |file: &str, name: &str, method: Option<bool>| -> Vec<usize> {
            by_file
                .get(file)
                .into_iter()
                .flatten()
                .copied()
                .filter(|&i| {
                    self.fns[i].name == name
                        && (method.is_none() || method == Some(self.fns[i].is_method))
                })
                .collect()
        };
        // Fixpoint: may_acquire = direct ∪ callees' may_acquire.
        let mut may: Vec<BTreeSet<String>> = direct.clone();
        loop {
            let mut changed = false;
            for idx in 0..self.fns.len() {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for (cn, ck) in &calls[idx] {
                    for target in resolve(&self.fns[idx].file, cn, *ck) {
                        if target != idx {
                            add.extend(may[target].iter().cloned());
                        }
                    }
                }
                let before = may[idx].len();
                may[idx].extend(add);
                if may[idx].len() != before {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Replay each fn computing hold scopes; collect edges
        // held → acquired with a representative site.
        let mut edges: BTreeMap<(String, String), SiteRef> = BTreeMap::new();
        for f in &self.fns {
            let mut holds: Vec<Hold> = Vec::new();
            let mut depth = 0usize;
            for ev in &f.events {
                match ev {
                    Ev::Open => depth += 1,
                    Ev::Close => {
                        depth = depth.saturating_sub(1);
                        holds.retain(|h| h.depth <= depth);
                    }
                    Ev::Semi => holds.retain(|h| h.binds || h.depth != depth),
                    Ev::Acquire { lock, at, binds } => {
                        for h in &holds {
                            edges
                                .entry((h.lock.clone(), lock.clone()))
                                .or_insert_with(|| at.clone());
                        }
                        holds.push(Hold {
                            lock: lock.clone(),
                            depth,
                            binds: *binds,
                        });
                    }
                    Ev::Call { name, method } => {
                        if holds.is_empty() {
                            continue;
                        }
                        let mut acquired: BTreeSet<&String> = BTreeSet::new();
                        for target in resolve(&f.file, name, *method) {
                            acquired.extend(may[target].iter());
                        }
                        for lock in acquired {
                            for h in &holds {
                                // Find a site: anchor call-derived edges at
                                // the held lock's own acquisition? The call
                                // token has no SiteRef; reuse the hold's
                                // nearest Acquire site below instead.
                                let at = f.events.iter().find_map(|e| match e {
                                    Ev::Acquire { lock: l, at, .. } if l == &h.lock => {
                                        Some(at.clone())
                                    }
                                    _ => None,
                                });
                                if let Some(at) = at {
                                    edges.entry((h.lock.clone(), lock.clone())).or_insert(at);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Self-edges are immediate potential deadlocks.
        for ((a, b), at) in &edges {
            if a == b {
                findings.extend(finding_at(
                    at,
                    format!(
                        "lock `{a}` may be re-acquired while already held (self-deadlock for a \
                         non-reentrant Mutex/RwLock writer) — narrow the first guard's scope or \
                         restructure"
                    ),
                ));
            }
        }

        // Cycle detection (len ≥ 2) via DFS over the edge set.
        let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            if a != b {
                adj.entry(a).or_default().push(b);
            }
        }
        let nodes: Vec<&String> = adj.keys().copied().collect();
        let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
        for &start in &nodes {
            // DFS from `start` looking for a path back to `start`.
            let mut stack: Vec<(&String, Vec<&String>)> = vec![(start, vec![start])];
            while let Some((node, path)) = stack.pop() {
                for &next in adj.get(node).into_iter().flatten() {
                    if next == start && path.len() >= 2 {
                        let mut cycle: Vec<String> = path.iter().map(|s| (*s).to_owned()).collect();
                        cycle.sort();
                        if reported.insert(cycle) {
                            let chain: Vec<&str> = path
                                .iter()
                                .map(|s| s.as_str())
                                .chain([start.as_str()])
                                .collect();
                            if let Some(at) = edges.get(&((*path[0]).clone(), (*path[1]).clone())) {
                                findings.extend(finding_at(
                                    at,
                                    format!(
                                        "potential deadlock: lock-order cycle {} — two threads \
                                         taking these locks in opposite order can block forever; \
                                         impose a single acquisition order or narrow a guard",
                                        chain.join(" → ")
                                    ),
                                ));
                            }
                        }
                    } else if !path.contains(&next) && path.len() < 8 {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push((next, p));
                    }
                }
            }
        }

        self.fns.clear();
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let mut lint = LockOrder::default();
        for (path, src) in files {
            assert!(lint.check_file(&SourceFile::parse(path, src)).is_empty());
        }
        lint.finish()
    }

    #[test]
    fn two_mutex_cycle_is_a_potential_deadlock() {
        let findings = run(&[(
            "crates/search/src/engine.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn ab(&self) { let _x = self.a.lock(); let _y = self.b.lock(); }\n\
                 fn ba(&self) { let _y = self.b.lock(); let _x = self.a.lock(); }\n\
             }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("lock-order cycle"));
        assert!(findings[0].message.contains("engine.a"));
        assert!(findings[0].message.contains("engine.b"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let findings = run(&[(
            "crates/search/src/engine.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn ab(&self) { let _x = self.a.lock(); let _y = self.b.lock(); }\n\
                 fn ab2(&self) { let _x = self.a.lock(); let _y = self.b.lock(); }\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cycle_through_a_callee_is_found() {
        let findings = run(&[(
            "crates/search/src/engine.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             fn take_a(s: &S) { let _g = s.a.lock(); }\n\
             fn under_b(s: &S) { let _g = s.b.lock(); take_a(s); }\n\
             fn under_a(s: &S) { let _g = s.a.lock(); let _h = s.b.lock(); }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("lock-order cycle"),
            "{findings:?}"
        );
    }

    #[test]
    fn per_iteration_guards_do_not_self_edge() {
        // The recorder `drain` shape: one shard lock per iteration, each
        // guard dying at the end of its block.
        let findings = run(&[(
            "crates/obs/src/recorder.rs",
            "struct R { shards: Vec<Mutex<u32>> }\n\
             fn recover(lock: &Mutex<u32>) -> std::sync::MutexGuard<'_, u32> { lock.lock().unwrap() }\n\
             impl R {\n\
                 fn drain(&self) {\n\
                     for shard in &self.shards {\n\
                         let mut guard = recover(shard);\n\
                         *guard += 1;\n\
                     }\n\
                 }\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn self_reacquire_is_flagged() {
        let findings = run(&[(
            "crates/search/src/engine.rs",
            "struct S { a: Mutex<u32> }\n\
             impl S {\n\
                 fn bad(&self) { let _x = self.a.lock(); let _y = self.a.lock(); }\n\
             }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0]
            .message
            .contains("re-acquired while already held"));
    }

    #[test]
    fn temporary_guard_dies_at_the_semicolon() {
        // `*slot().write()… = …;` then a later lock: no edge.
        let findings = run(&[(
            "crates/obs/src/span.rs",
            "struct S { a: RwLock<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn set(&self) { *self.a.write().unwrap() = 1; let _g = self.b.lock(); \
                  *self.a.write().unwrap() = 2; }\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn accessor_fn_and_wrapper_resolve_to_one_lock() {
        // `recover(ring())` + a static RING alias: one canonical lock,
        // and holding it while calling a registry-locking fn makes an
        // edge but no cycle.
        let findings = run(&[(
            "crates/obs/src/trace.rs",
            "fn ring() -> &'static Mutex<u32> { static RING: OnceLock<Mutex<u32>> = OnceLock::new(); \
              RING.get_or_init(|| Mutex::new(0)) }\n\
             fn recover(lock: &Mutex<u32>) -> std::sync::MutexGuard<'_, u32> { lock.lock().unwrap() }\n\
             fn finalize() { let mut g = recover(ring()); *g += 1; }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
