//! `metric-name`: every metric/span name literal handed to the
//! `treesim-obs` registry obeys the documented grammar.
//!
//! The grammar itself lives in `treesim_obs::naming` — the *same* module
//! the runtime contract test uses — so this lint cannot drift from what
//! the registry accepts. Extraction is token-based: for each call to
//! `counter` / `gauge` / `histogram` / `span!` / `event!` /
//! `record_metrics` (macro, function or method form) the first string
//! literal of the first argument is taken as the name; `format!`
//! templates validate with `{…}` placeholders as wildcard segments, so
//! `"cascade.{}.evaluated"` and `"{prefix}.filter.us"` are checked too.
//!
//! The cascade contract is cross-checked statically: every string literal
//! returned from a `fn stage_name` body must be a member of
//! `naming::CASCADE_STAGES`, every `cascade.<stage>.*` literal must name
//! a member, and every member must be returned by some `stage_name`
//! implementation — so the table, the filters and the metric names cannot
//! drift apart without a finding.
//!
//! The `/metrics` exporter renders registry names through
//! `naming::prometheus_name` (dots → underscores), which is not injective
//! when segments themselves contain underscores: `engine.knn_filter.us`
//! and `engine.knn.filter.us` would silently merge into one exposition
//! series. This lint therefore also checks **sanitized uniqueness**:
//! every pair of distinct concrete name literals must stay distinct after
//! sanitization — the guarantee `naming::prometheus_name`'s docs promise.

use std::collections::{BTreeMap, BTreeSet};

use treesim_obs::naming::{prometheus_name, validate_metric_template, CASCADE_STAGES};

use super::Lint;
use crate::lex::TokenKind;
use crate::lint::{Finding, Severity, SourceFile};

/// Identifiers that take a metric/span name as their first argument.
const NAME_SINKS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "span",
    "event",
    "record_metrics",
];

/// The `metric-name` pass.
#[derive(Debug, Default)]
pub struct MetricNames {
    /// Stage-name literals collected from `fn stage_name` bodies.
    stages_returned: BTreeSet<String>,
    /// Where the first `fn stage_name` was seen (anchor for finish()).
    stage_fn_site: Option<(String, u32, u32)>,
    /// Prometheus-sanitized name → the first concrete literal (and its
    /// site) that produced it, for cross-file collision detection.
    sanitized_seen: BTreeMap<String, (String, String, u32, u32)>,
}

/// Crates whose sources emit metrics (obs itself is the registry and is
/// exempt: its names are caller-supplied).
fn in_scope(path: &str) -> bool {
    ["crates/search/src/", "crates/cli/src/", "crates/bench/src/"]
        .iter()
        .any(|prefix| path.starts_with(prefix))
}

impl Lint for MetricNames {
    fn id(&self) -> &'static str {
        "metric-name"
    }

    fn description(&self) -> &'static str {
        "metric/span name literals parse under the obs::naming grammar; \
         cascade stages match Filter::stage_name"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Finding> {
        if !in_scope(&file.path) {
            return Vec::new();
        }
        let mut findings = Vec::new();
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.kind != TokenKind::Ident || file.in_test_code(t.start) {
                continue;
            }
            if NAME_SINKS.contains(&t.value.as_str()) {
                // Skip definitions (`fn counter(…)`) — only call sites.
                if file
                    .prev_code(i)
                    .is_some_and(|p| file.tokens[p].is_ident("fn"))
                {
                    continue;
                }
                // Macro form consumes a `!`; both forms then need `(`.
                let Some(mut open) = file.next_code(i + 1) else {
                    continue;
                };
                if file.tokens[open].is_punct('!') {
                    let Some(next) = file.next_code(open + 1) else {
                        continue;
                    };
                    open = next;
                }
                if !file.tokens[open].is_punct('(') {
                    continue;
                }
                if let Some(name_tok) = first_str_in_first_arg(file, open) {
                    let name = file.tokens[name_tok].value.clone();
                    if let Err(e) = validate_metric_template(&name) {
                        findings.extend(file.finding(
                            self.id(),
                            &file.tokens[name_tok],
                            format!("metric name {name:?} violates the naming contract: {e}"),
                        ));
                    } else if !name.contains('{') {
                        // Concrete literal: its Prometheus-sanitized form
                        // (dots → underscores) must stay unique, or two
                        // registry series merge on /metrics.
                        let sanitized = prometheus_name(&name);
                        let token = &file.tokens[name_tok];
                        match self.sanitized_seen.get(&sanitized) {
                            Some((other, path, line, _)) if *other != name => {
                                findings.extend(file.finding(
                                    self.id(),
                                    token,
                                    format!(
                                        "metric names {name:?} and {other:?} ({path}:{line}) \
                                         both sanitize to Prometheus name {sanitized:?} — the \
                                         /metrics exporter would merge them; rename one"
                                    ),
                                ));
                            }
                            Some(_) => {}
                            None => {
                                self.sanitized_seen.insert(
                                    sanitized,
                                    (name, file.path.clone(), token.line, token.col),
                                );
                            }
                        }
                    }
                }
            }
            // `fn stage_name` bodies: collect and validate returned
            // stage literals.
            if t.value == "stage_name"
                && file
                    .prev_code(i)
                    .is_some_and(|p| file.tokens[p].is_ident("fn"))
            {
                if self.stage_fn_site.is_none() {
                    self.stage_fn_site = Some((file.path.clone(), t.line, t.col));
                }
                for s in body_string_literals(file, i) {
                    let value = file.tokens[s].value.clone();
                    if CASCADE_STAGES.contains(&value.as_str()) {
                        self.stages_returned.insert(value);
                    } else {
                        findings.extend(file.finding(
                            self.id(),
                            &file.tokens[s],
                            format!(
                                "stage_name returns {value:?}, which is not in \
                                 naming::CASCADE_STAGES ({}) — extend the contract table \
                                 (and the README naming table) in the same change",
                                CASCADE_STAGES.join(", ")
                            ),
                        ));
                    }
                }
            }
        }
        findings
    }

    fn finish(&mut self) -> Vec<Finding> {
        // Only meaningful when the scanned set actually contained filter
        // implementations (fixtures usually don't).
        let Some((path, line, col)) = self.stage_fn_site.clone() else {
            return Vec::new();
        };
        CASCADE_STAGES
            .iter()
            .filter(|stage| !self.stages_returned.contains(**stage))
            .map(|stage| Finding {
                lint: self.id(),
                severity: Severity::Error,
                path: path.clone(),
                line,
                col,
                message: format!(
                    "naming::CASCADE_STAGES lists {stage:?} but no Filter::stage_name \
                     implementation returns it — remove it from the table or restore the stage"
                ),
                snippet: String::new(),
            })
            .collect()
    }
}

/// First string literal inside the first argument of the call whose `(`
/// is at token index `open`. Stops at a top-level `,` or the matching
/// `)`; descends into nested calls (`&format!(…)`).
fn first_str_in_first_arg(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = file.tokens.get(i) {
        if t.is_trivia() {
            i += 1;
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return None;
            }
        } else if t.is_punct(',') && depth == 1 {
            return None;
        } else if t.kind == TokenKind::Str {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// All string-literal token indices in the `{…}` body following the item
/// whose name token is at `name_idx` (skips the signature), excluding
/// test code.
fn body_string_literals(file: &SourceFile, name_idx: usize) -> Vec<usize> {
    let mut i = name_idx;
    // Find the body opening brace, skipping the parameter list.
    let mut paren = 0usize;
    let open = loop {
        i += 1;
        let Some(t) = file.tokens.get(i) else {
            return Vec::new();
        };
        if t.is_trivia() {
            continue;
        }
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('{') && paren == 0 {
            break i;
        } else if t.is_punct(';') && paren == 0 {
            return Vec::new(); // trait method without a default body
        }
    };
    let mut depth = 0usize;
    let mut out = Vec::new();
    let mut j = open;
    while let Some(t) = file.tokens.get(j) {
        if !t.is_trivia() {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokenKind::Str && !file.in_test_code(t.start) {
                out.push(j);
            }
        }
        j += 1;
    }
    out
}

impl MetricNames {
    /// Stages collected so far (test hook).
    #[cfg(test)]
    fn stages(&self) -> Vec<String> {
        self.stages_returned.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        MetricNames::default().check_file(&SourceFile::parse(path, src))
    }

    #[test]
    fn accepts_conforming_literals_and_templates() {
        let findings = run(
            "crates/search/src/engine.rs",
            r#"
            fn f(stats: &SearchStats, n: u64) {
                let _span = treesim_obs::span!("engine.knn", k = n);
                treesim_obs::counter!("dynamic.push").inc();
                treesim_obs::event!("engine.knn.done", results = n);
                treesim_obs::histogram!("cascade.propt.iters").record(n);
                stats.record_metrics("engine.knn");
                counter(&format!("cascade.{}.evaluated", "size")).add(n);
                histogram(&format!("{prefix}.filter.us")).record(n);
            }
            "#,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn rejects_bad_prefix_segment_and_stage() {
        let findings = run(
            "crates/search/src/engine.rs",
            r#"
            fn f() {
                treesim_obs::counter!("widget.count").inc();
                treesim_obs::span!("engine.Knn");
                counter(&format!("cascade.{}.evaluated", x));
                treesim_obs::counter!("cascade.warp.evaluated").inc();
            }
            "#,
        );
        // widget prefix, Knn segment, warp stage — the wildcard template
        // is fine.
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings[0].message.contains("unknown prefix"));
        assert!(findings[1].message.contains("not of the form"));
        assert!(findings[2].message.contains("unknown cascade stage"));
    }

    #[test]
    fn stage_name_literals_are_cross_checked() {
        let mut lint = MetricNames::default();
        let file = SourceFile::parse(
            "crates/search/src/filter.rs",
            r#"
            impl Filter for F {
                fn stage_name(&self, stage: usize) -> &'static str {
                    match stage { 0 => "size", 1 => "bdist", _ => "warp" }
                }
            }
            "#,
        );
        let findings = lint.check_file(&file);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("\"warp\""));
        assert_eq!(lint.stages(), vec!["bdist".to_owned(), "size".to_owned()]);
        // propt, histo, scan and postings were never returned →
        // finish() findings.
        let missing = lint.finish();
        assert_eq!(missing.len(), 4, "{missing:?}");
        assert!(missing.iter().any(|f| f.message.contains("\"propt\"")));
        assert!(missing.iter().any(|f| f.message.contains("\"histo\"")));
        assert!(missing.iter().any(|f| f.message.contains("\"scan\"")));
        assert!(missing.iter().any(|f| f.message.contains("\"postings\"")));
    }

    #[test]
    fn full_stage_coverage_passes_finish() {
        let mut lint = MetricNames::default();
        lint.check_file(&SourceFile::parse(
            "crates/search/src/filter.rs",
            r#"
            fn stage_name(&self, stage: usize) -> &'static str {
                match stage { 0 => "postings", 1 => "size", 2 => "bdist", 3 => "histo", 4 => "scan", _ => "propt" }
            }
            "#,
        ));
        assert!(lint.finish().is_empty());
    }

    #[test]
    fn out_of_scope_and_test_code_are_ignored() {
        assert!(run(
            "crates/obs/src/metrics.rs",
            r#"fn f() { counter("anything goes here"); }"#
        )
        .is_empty());
        assert!(run(
            "crates/search/src/stats.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { counter(\"test.stats.queries\"); }\n}\n"
        )
        .is_empty());
        // Dynamic names (no literal) are the runtime test's job.
        assert!(run(
            "crates/search/src/stats.rs",
            "fn f(name: &str) { counter(name).inc(); }"
        )
        .is_empty());
    }

    #[test]
    fn sanitized_collisions_are_flagged_across_files() {
        let mut lint = MetricNames::default();
        let a = lint.check_file(&SourceFile::parse(
            "crates/search/src/engine.rs",
            r#"fn f() { treesim_obs::counter!("engine.knn.queries").inc(); }"#,
        ));
        assert!(a.is_empty(), "{a:?}");
        // The same literal at another site is the same series — fine.
        let b = lint.check_file(&SourceFile::parse(
            "crates/cli/src/commands.rs",
            r#"fn g() { treesim_obs::counter!("engine.knn.queries").inc(); }"#,
        ));
        assert!(b.is_empty(), "{b:?}");
        // A *different* dotted name with the same Prometheus form merges
        // two series on /metrics — flagged, pointing at the first site.
        let c = lint.check_file(&SourceFile::parse(
            "crates/bench/src/report.rs",
            r#"fn h() { treesim_obs::counter!("engine.knn_queries").inc(); }"#,
        ));
        assert_eq!(c.len(), 1, "{c:?}");
        assert!(c[0].message.contains("engine_knn_queries"));
        assert!(c[0].message.contains("crates/search/src/engine.rs"));
    }

    #[test]
    fn inline_allow_works_for_experimental_names() {
        let findings = run(
            "crates/bench/src/report.rs",
            "fn f() {\n\
                 // treesim-lint: allow(metric-name)\n\
                 counter(\"scratch.tmp\").inc();\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
