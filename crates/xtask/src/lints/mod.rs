//! The lint registry: every pass gets the full token stream of each
//! in-scope file ([`Lint::check_file`]) and a cross-file finalizer
//! ([`Lint::finish`]) for whole-workspace contracts.

pub mod atomics;
pub mod doc_coverage;
pub mod happens_before;
pub mod lock_order;
pub mod metric_names;
pub mod panic_surface;

use crate::lint::{Finding, SourceFile};

/// Library crates whose non-test code must be panic-free and fully
/// documented (the engine surface; binaries may still `expect`).
pub const LIBRARY_CRATES: &[&str] = &["tree", "core", "edit", "histogram", "search", "obs"];

/// Whether `path` (workspace-relative) is library-crate source.
pub fn is_library_src(path: &str) -> bool {
    LIBRARY_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

/// One analyzer pass.
pub trait Lint {
    /// Stable id used in reports, inline allows and `analyze.allow`.
    fn id(&self) -> &'static str;
    /// One-line description for `--help` and the summary table.
    fn description(&self) -> &'static str;
    /// Checks one file (the lint decides whether `file.path` is in scope).
    fn check_file(&mut self, file: &SourceFile) -> Vec<Finding>;
    /// Emits findings that need cross-file state (after all files).
    fn finish(&mut self) -> Vec<Finding> {
        Vec::new()
    }
}

/// All passes, in report order. `root` is the workspace root used by
/// passes that need to resolve files on disk (doc-coverage's `pub mod`
/// handling).
pub fn all(root: Option<std::path::PathBuf>) -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(panic_surface::PanicSurface),
        Box::new(atomics::AtomicsAudit),
        Box::new(happens_before::HappensBefore::default()),
        Box::new(lock_order::LockOrder::default()),
        Box::new(metric_names::MetricNames::default()),
        Box::new(doc_coverage::DocCoverage { root }),
    ]
}
