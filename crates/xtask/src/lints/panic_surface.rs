//! `panic-surface`: library crates must not panic in non-test code.
//!
//! Flags `.unwrap()` / `.expect(…)`, the `panic!` / `todo!` /
//! `unimplemented!` macros, and indexing by integer literal (`xs[0]`) in
//! the `src/` trees of the library crates. `unreachable!` and
//! `debug_assert!` are deliberately *not* flagged: they document
//! invariants rather than introduce failure modes on reachable paths.
//! Triaged exceptions carry an inline
//! `// treesim-lint: allow(panic-surface)` or an `analyze.allow` entry
//! with a justification.

use super::{is_library_src, Lint};
use crate::lex::TokenKind;
use crate::lint::{Finding, SourceFile};

/// Macro names that are always a panic site.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// The `panic-surface` pass.
#[derive(Debug, Default)]
pub struct PanicSurface;

impl Lint for PanicSurface {
    fn id(&self) -> &'static str {
        "panic-surface"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/indexing-by-literal in library non-test code"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Finding> {
        if !is_library_src(&file.path) {
            return Vec::new();
        }
        let mut findings = Vec::new();
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.kind != TokenKind::Ident || file.in_test_code(t.start) {
                continue;
            }
            // `.unwrap()` / `.expect(` — method calls only.
            if (t.value == "unwrap" || t.value == "expect")
                && file
                    .prev_code(i)
                    .is_some_and(|p| file.tokens[p].is_punct('.'))
                && file
                    .next_code(i + 1)
                    .is_some_and(|n| file.tokens[n].is_punct('('))
            {
                findings.extend(file.finding(
                    self.id(),
                    t,
                    format!(
                        ".{}() can panic — return a Result, move the invariant behind \
                         debug_assert!, or allowlist with a justification",
                        t.value
                    ),
                ));
                continue;
            }
            // panic!/todo!/unimplemented!
            if PANIC_MACROS.contains(&t.value.as_str())
                && file
                    .next_code(i + 1)
                    .is_some_and(|n| file.tokens[n].is_punct('!'))
            {
                findings.extend(file.finding(
                    self.id(),
                    t,
                    format!("{}! in library code — return an error instead", t.value),
                ));
                continue;
            }
        }
        // Indexing by integer literal: `expr[3]` where expr ends in an
        // ident, `)` or `]`. Array types/literals (`[u8; 4]`, `[0; n]`)
        // never have such a preceding token.
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if !t.is_punct('[') || file.in_test_code(t.start) {
                continue;
            }
            let indexable_before = file.prev_code(i).is_some_and(|p| {
                let prev = &file.tokens[p];
                prev.kind == TokenKind::Ident && !is_keyword(&prev.value)
                    || prev.is_punct(')')
                    || prev.is_punct(']')
            });
            if !indexable_before {
                continue;
            }
            let Some(n1) = file.next_code(i + 1) else {
                continue;
            };
            let Some(n2) = file.next_code(n1 + 1) else {
                continue;
            };
            if file.tokens[n1].kind == TokenKind::Number && file.tokens[n2].is_punct(']') {
                findings.extend(file.finding(
                    self.id(),
                    &file.tokens[n1],
                    format!(
                        "indexing by literal `[{}]` can panic — use .get({}) or restructure",
                        file.tokens[n1].value, file.tokens[n1].value
                    ),
                ));
            }
        }
        findings
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`return [0]`, `break`, match arm `=> [0]`, …).
fn is_keyword(ident: &str) -> bool {
    matches!(
        ident,
        "return" | "break" | "else" | "in" | "match" | "if" | "while" | "loop" | "move" | "as"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        PanicSurface.check_file(&SourceFile::parse(path, src))
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let findings = run(
            "crates/search/src/engine.rs",
            "fn f(x: Option<u32>) -> u32 {\n\
                 let a = x.unwrap();\n\
                 let b = x.expect(\"msg\");\n\
                 if a == 0 { panic!(\"boom\"); }\n\
                 todo!()\n\
             }\n",
        );
        assert_eq!(findings.len(), 4, "{findings:?}");
        assert!(findings.iter().all(|f| f.lint == "panic-surface"));
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].snippet.contains("x.unwrap()"));
    }

    #[test]
    fn flags_indexing_by_literal_only() {
        let findings = run(
            "crates/core/src/vector.rs",
            "fn f(xs: &[u32], i: usize) -> u32 {\n\
                 let bad = xs[0];\n\
                 let also_bad = (xs)[1];\n\
                 let fine = xs[i];\n\
                 let arr: [u8; 4] = [0; 4];\n\
                 let lit = [1, 2, 3];\n\
                 bad + also_bad + fine + arr[i] as u32 + lit[i]\n\
             }\n",
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("[0]"));
        assert!(findings[1].message.contains("[1]"));
    }

    #[test]
    fn unwrap_or_and_field_access_are_fine() {
        let findings = run(
            "crates/tree/src/arena.rs",
            "fn f(x: Option<u32>, t: (u32, u32)) -> u32 {\n\
                 x.unwrap_or(0) + x.unwrap_or_else(|| 1) + t.0\n\
             }\n\
             fn expect_this(unwrap: u32) -> u32 { unwrap }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn test_code_and_other_crates_are_out_of_scope() {
        let in_tests = run(
            "crates/search/src/engine.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n",
        );
        assert!(in_tests.is_empty(), "{in_tests:?}");
        let cli = run("crates/cli/src/main.rs", "fn f() { None::<u32>.unwrap(); }");
        assert!(cli.is_empty(), "binaries may panic");
        let integration = run(
            "crates/search/tests/prop_engine.rs",
            "fn f() { None::<u32>.unwrap(); }",
        );
        assert!(integration.is_empty(), "tests dir is out of scope");
    }

    #[test]
    fn inline_allow_silences_a_site() {
        let findings = run(
            "crates/obs/src/metrics.rs",
            "fn f(m: std::sync::Mutex<u32>) {\n\
                 // lock poisoning is unrecoverable by design\n\
                 // treesim-lint: allow(panic-surface)\n\
                 let _ = m.lock().expect(\"poisoned\");\n\
                 let _ = m.lock().expect(\"still flagged\");\n\
             }\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].snippet.contains("still flagged"));
    }

    #[test]
    fn strings_and_docs_never_trigger() {
        let findings = run(
            "crates/edit/src/lib.rs",
            "/// Call `.unwrap()` on the result — panic!(no).\n\
             fn f() -> &'static str { \"x.unwrap() panic! todo!\" }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
