//! `xtask` — first-party workspace tooling.
//!
//! Subcommands:
//!
//! * `analyze` — a static analyzer over the workspace's own sources that
//!   enforces the repo's written invariants (panic-free library crates,
//!   audited atomics, the metric-name contract incl. Prometheus-sanitized
//!   uniqueness, doc coverage on public API). Required CI step.
//! * `bench-compare <baseline.json> <new.json> [--threshold N]
//!   [--counters-only]` — perf regression gate over two
//!   `BENCH_cascade.json` reports: fails when a funnel/refinement/latency
//!   metric regressed by more than N % (default 25). CI runs it with
//!   `--counters-only`, gating on the deterministic funnel and
//!   refinement counters while leaving noisy wall-clock latencies to
//!   local runs. Required CI step.
//!
//! ```text
//! cargo run -p xtask -- analyze
//! cargo run -p xtask -- bench-compare BENCH_cascade.json target/BENCH_new.json
//! ```
//!
//! See README.md § "Analyzer" for the lint catalogue and escape hatches.

mod bench_compare;
mod lex;
mod lint;
mod lints;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use treesim_obs::json::Json;

use lint::{Allowlist, Finding, Severity, SourceFile};

/// Name of the allowlist file at the workspace root.
const ALLOWLIST_FILE: &str = "analyze.allow";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if command == "bench-compare" {
        return bench_compare_main(args);
    }
    if command != "analyze" {
        eprintln!("unknown subcommand `{command}`\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut json = false;
    let mut strict_allow = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--strict-allow" => strict_allow = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    match analyze(&root, json, strict_allow) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("xtask analyze: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: cargo run -p xtask -- analyze [--json] [--strict-allow] [--root <path>]
       cargo run -p xtask -- bench-compare <baseline.json> <new.json> \
[--threshold <percent>] [--counters-only]";

/// Parses `bench-compare` arguments and runs the comparison.
fn bench_compare_main(args: impl Iterator<Item = String>) -> ExitCode {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = bench_compare::DEFAULT_THRESHOLD_PERCENT;
    let mut counters_only = false;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--counters-only" => counters_only = true,
            "--threshold" => {
                let Some(value) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold requires a number (percent)\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                threshold = value;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other => positional.push(other.to_owned()),
        }
    }
    let [baseline, new] = positional.as_slice() else {
        eprintln!("bench-compare needs exactly two report paths\n{USAGE}");
        return ExitCode::FAILURE;
    };
    match bench_compare::run(baseline, new, threshold, counters_only) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("xtask bench-compare: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root, derived from this crate's manifest directory
/// (`crates/xtask` → two levels up).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

/// Runs every lint over every workspace source file. Returns `Ok(true)`
/// when no (non-allowlisted) error findings remain. With `strict_allow`,
/// stale allowlist entries are errors rather than warnings — the CI mode,
/// so suppressions cannot outlive the code they excuse.
fn analyze(root: &Path, json: bool, strict_allow: bool) -> Result<bool, String> {
    let files = collect_sources(root)?;
    let mut lints = lints::all(Some(root.to_path_buf()));

    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_FILE)).unwrap_or_default();
    let (mut allowlist, mut findings) = Allowlist::parse(&allow_text);

    let mut scanned = 0usize;
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        let file = SourceFile::parse(rel, &src);
        scanned += 1;
        for lint in &mut lints {
            findings.extend(lint.check_file(&file));
        }
    }
    for lint in &mut lints {
        findings.extend(lint.finish());
    }

    // Split off findings the allowlist covers; unused entries come back
    // as warnings so stale suppressions rot visibly, not silently.
    let mut reported: Vec<Finding> = Vec::new();
    let mut allowed = 0usize;
    for finding in findings {
        if finding.severity == Severity::Error && allowlist.covers(&finding) {
            allowed += 1;
        } else {
            reported.push(finding);
        }
    }
    reported.extend(allowlist.unused().into_iter().map(|mut f| {
        if strict_allow {
            f.severity = Severity::Error;
            f.message.push_str(" [--strict-allow]");
        }
        f
    }));
    reported
        .sort_by(|a, b| (&a.path, a.line, a.col, a.lint).cmp(&(&b.path, b.line, b.col, b.lint)));
    let errors = reported
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    record_finding_counters(&reported);

    if json {
        println!(
            "{}",
            report_json(&lints, &reported, scanned, allowed, strict_allow)
        );
    } else {
        report_text(&lints, &reported, scanned, allowed);
    }
    Ok(errors == 0)
}

/// Registry name for a lint's finding counter (`analyze.findings.<id>`
/// with the id's dashes flattened to fit the metric-name grammar).
fn finding_counter_name(lint_id: &str) -> String {
    format!("analyze.findings.{}", lint_id.replace('-', "_"))
}

/// Bumps one `analyze.findings.<lint>` counter per reported finding, so a
/// `--json` consumer (or any future in-process embedding) can read the
/// per-lint totals off the standard obs registry. The names are covered
/// by the runtime grammar test below and by the obs naming tests.
fn record_finding_counters(findings: &[Finding]) {
    for f in findings {
        treesim_obs::metrics::counter(&finding_counter_name(f.lint)).inc();
    }
}

/// Every `.rs` file under `crates/*/{src,tests,benches}` plus build
/// scripts, workspace-relative with forward slashes. `vendor/` is
/// third-party and exempt.
fn collect_sources(root: &Path) -> Result<Vec<String>, String> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries.flatten() {
        let crate_dir = entry.path();
        if !crate_dir.is_dir() {
            continue;
        }
        for sub in ["src", "tests", "benches"] {
            walk_rs(&crate_dir.join(sub), &mut files);
        }
        let build = crate_dir.join("build.rs");
        if build.is_file() {
            files.push(build);
        }
    }
    let mut rel: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rel.sort();
    Ok(rel)
}

/// Recursively collects `.rs` files under `dir` (no-op if absent).
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Human-readable report: findings then the per-lint summary table.
fn report_text(
    lints: &[Box<dyn lints::Lint>],
    findings: &[Finding],
    scanned: usize,
    allowed: usize,
) {
    for f in findings {
        println!(
            "{}: {}:{}:{}: [{}] {}",
            f.severity.label(),
            f.path,
            f.line,
            f.col,
            f.lint,
            f.message
        );
        if !f.snippet.is_empty() {
            println!("    | {}", f.snippet);
        }
    }
    if !findings.is_empty() {
        println!();
    }
    let counts = count_by_lint(findings);
    let width = lints
        .iter()
        .map(|l| l.id().len())
        .chain(["allowlist".len()])
        .max()
        .unwrap_or(0);
    println!("lint summary ({scanned} files scanned, {allowed} finding(s) allowlisted):");
    for lint in lints {
        let (errors, warnings) = counts.get(lint.id()).copied().unwrap_or((0, 0));
        let status = if errors > 0 {
            format!("{errors} error(s)")
        } else if warnings > 0 {
            format!("{warnings} warning(s)")
        } else {
            "ok".to_owned()
        };
        println!(
            "  {:width$}  {status:12}  {}",
            lint.id(),
            lint.description()
        );
    }
    if let Some(&(errors, warnings)) = counts.get("allowlist") {
        println!(
            "  {:width$}  {errors} error(s), {warnings} warning(s)  {ALLOWLIST_FILE} hygiene",
            "allowlist"
        );
    }
    let total_errors: usize = counts.values().map(|&(e, _)| e).sum();
    if total_errors == 0 {
        println!("analyze: clean");
    } else {
        println!("analyze: {total_errors} error(s) — fix, inline-allow, or add a justified {ALLOWLIST_FILE} entry");
    }
}

/// `(errors, warnings)` per lint id.
fn count_by_lint(findings: &[Finding]) -> BTreeMap<&'static str, (usize, usize)> {
    let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for f in findings {
        let slot = counts.entry(f.lint).or_default();
        match f.severity {
            Severity::Error => slot.0 += 1,
            Severity::Warning => slot.1 += 1,
        }
    }
    counts
}

/// Schema tag of the `--json` report. v2 adds `schema` itself,
/// `strict_allow`, and the per-lint `counter` names; v1 consumers keyed
/// on the other top-level fields, which are unchanged.
const ANALYZE_SCHEMA: &str = "treesim-analyze/v2";

/// Machine-readable report (one JSON object on stdout).
fn report_json(
    lints: &[Box<dyn lints::Lint>],
    findings: &[Finding],
    scanned: usize,
    allowed: usize,
    strict_allow: bool,
) -> String {
    let counts = count_by_lint(findings);
    let summary = lints
        .iter()
        .map(|lint| {
            let (errors, warnings) = counts.get(lint.id()).copied().unwrap_or((0, 0));
            Json::obj(vec![
                ("lint", Json::Str(lint.id().to_owned())),
                ("counter", Json::Str(finding_counter_name(lint.id()))),
                ("errors", Json::U64(errors as u64)),
                ("warnings", Json::U64(warnings as u64)),
            ])
        })
        .collect();
    let items = findings
        .iter()
        .map(|f| {
            Json::obj(vec![
                ("lint", Json::Str(f.lint.to_owned())),
                ("severity", Json::Str(f.severity.label().to_owned())),
                ("path", Json::Str(f.path.clone())),
                ("line", Json::U64(u64::from(f.line))),
                ("col", Json::U64(u64::from(f.col))),
                ("message", Json::Str(f.message.clone())),
                ("snippet", Json::Str(f.snippet.clone())),
            ])
        })
        .collect();
    let total_errors: usize = counts.values().map(|&(e, _)| e).sum();
    Json::obj(vec![
        ("schema", Json::Str(ANALYZE_SCHEMA.to_owned())),
        ("strict_allow", Json::Bool(strict_allow)),
        ("files_scanned", Json::U64(scanned as u64)),
        ("allowlisted", Json::U64(allowed as u64)),
        ("errors", Json::U64(total_errors as u64)),
        ("summary", Json::Arr(summary)),
        ("findings", Json::Arr(items)),
    ])
    .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_counter_names_parse_under_the_grammar() {
        // Every lint id (and the allowlist pseudo-lint) must flatten to a
        // valid registry name, or the counters would poison the registry
        // the metric-name lint itself guards.
        let mut ids: Vec<&str> = lints::all(None).iter().map(|l| l.id()).collect();
        ids.push("allowlist");
        for id in ids {
            let name = finding_counter_name(id);
            treesim_obs::naming::validate_metric_name(&name, false)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn strict_allow_escalates_stale_entries() {
        let dir = std::env::temp_dir().join(format!(
            "treesim-xtask-strict-{}-{}",
            std::process::id(),
            line!()
        ));
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("lib.rs"), "//! Demo crate.\n").unwrap();
        std::fs::write(
            dir.join(ALLOWLIST_FILE),
            "panic-surface crates/demo/src/lib.rs \"nothing\" stale entry\n",
        )
        .unwrap();
        // Lax: the stale entry is only a warning, the run stays green.
        assert_eq!(analyze(&dir, false, false), Ok(true));
        // Strict: the same stale entry fails the run.
        assert_eq!(analyze(&dir, false, true), Ok(false));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_report_carries_the_v2_schema() {
        let report = report_json(&lints::all(None), &[], 0, 0, true);
        let parsed = treesim_obs::parse_json(&report).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(ANALYZE_SCHEMA)
        );
        assert_eq!(parsed.get("strict_allow"), Some(&Json::Bool(true)));
        let summary = parsed.get("summary").unwrap();
        let Json::Arr(rows) = summary else {
            panic!("summary must be an array")
        };
        assert!(rows.iter().any(|row| {
            row.get("lint").and_then(Json::as_str) == Some("happens-before")
                && row.get("counter").and_then(Json::as_str)
                    == Some("analyze.findings.happens_before")
        }));
    }
}
