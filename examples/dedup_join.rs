//! Data cleansing via approximate self-join — finding near-duplicate
//! records in a dirty corpus (a §1 motivation: data cleansing /
//! integration).
//!
//! ```text
//! cargo run --release --example dedup_join
//! ```

use treesim::datagen::dblp::{generate_forest, DblpConfig};
use treesim::prelude::*;
use treesim::search::{similarity_self_join, threshold_clusters};

fn main() {
    // A corpus of bibliographic records containing clusters of
    // near-duplicates (variant spellings, dropped fields, changed years).
    let forest = generate_forest(&DblpConfig {
        record_count: 250,
        rng_seed: 7,
        cluster_size: 4,
    });
    println!(
        "corpus: {} records, avg size {:.1} nodes",
        forest.len(),
        forest.stats().avg_size
    );

    // ── 1. τ-self-join: candidate duplicate pairs. ───────────────────────
    let tau = 2u32;
    let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
    let (pairs, stats) = similarity_self_join(&forest, &filter, tau);
    println!(
        "\nself-join at τ = {tau}: {} duplicate pairs found",
        pairs.len()
    );
    println!(
        "filtering: {} candidate pairs → {} refined ({:.1}%) → {} joined",
        stats.pairs_considered,
        stats.pairs_refined,
        stats.refine_fraction() * 100.0,
        stats.pairs_joined
    );
    for pair in pairs.iter().take(5) {
        println!(
            "  records {:>3} ≈ {:>3}  (edit distance {})",
            pair.left.0, pair.right.0, pair.distance
        );
    }

    // ── 2. Duplicate groups via threshold clustering. ────────────────────
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let clustering = threshold_clusters(&engine, tau);
    let duplicate_groups: Vec<_> = clustering
        .clusters
        .iter()
        .filter(|members| members.len() > 1)
        .collect();
    println!(
        "\n{} records collapse into {} duplicate groups + {} singletons",
        forest.len(),
        duplicate_groups.len(),
        clustering.len() - duplicate_groups.len()
    );
    if let Some(largest) = duplicate_groups.iter().max_by_key(|g| g.len()) {
        println!(
            "largest group has {} members: {:?}",
            largest.len(),
            largest.iter().map(|id| id.0).collect::<Vec<_>>()
        );
    }

    // Sanity: every joined pair landed in the same cluster.
    for pair in &pairs {
        assert_eq!(
            clustering.cluster_of(pair.left),
            clustering.cluster_of(pair.right)
        );
    }
    println!("\nall joined pairs are consistent with the clustering ✓");
}
