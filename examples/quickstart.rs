//! Quickstart: binary branch vectors, lower bounds and similarity search.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use treesim::prelude::*;

fn main() {
    // ── 1. Build a small dataset of rooted, ordered, labeled trees. ──────
    let mut forest = Forest::new();
    let specs = [
        "a(b(c(d)) b e)", // the paper's running example T1
        "a(c(d) b e)",    // T2 = T1 with the first b deleted
        "a(b(c(d)) b e f)",
        "a(b c)",
        "x(y z)",
        "a(e b(c(d)) b)", // T1 with siblings rotated
    ];
    for spec in specs {
        forest.parse_bracket(spec).unwrap();
    }

    // ── 2. The transformation: trees → binary branch vectors. ────────────
    let t1 = forest.tree(TreeId(0));
    let t2 = forest.tree(TreeId(1));
    let mut vocab = BranchVocab::new(2); // two-level binary branches
    let v1 = PositionalVector::build(t1, &mut vocab);
    let v2 = PositionalVector::build(t2, &mut vocab);

    let bdist = v1.bdist(&v2);
    let edist = edit_distance(t1, t2);
    println!("T1 = {}", specs[0]);
    println!("T2 = {}", specs[1]);
    println!("binary branch distance BDist(T1,T2) = {bdist}");
    println!("tree edit distance     EDist(T1,T2) = {edist}");
    println!(
        "Theorem 3.2 guarantee:  BDist ≤ 5·EDist  ({bdist} ≤ {})",
        5 * edist
    );
    println!(
        "plain lower bound  ⌈BDist/5⌉        = {}",
        bdist.div_ceil(5)
    );
    println!(
        "positional bound   propt            = {} (≤ EDist = {edist})",
        v1.optimistic_bound(&v2)
    );

    // ── 3. Filter-and-refine similarity search. ──────────────────────────
    let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
    let engine = SearchEngine::new(&forest, filter);

    let (neighbors, stats) = engine.knn(t1, 3);
    println!("\n3-NN of T1:");
    for n in &neighbors {
        println!(
            "  tree {:>2}  distance {}  ({})",
            n.tree.0,
            n.distance,
            specs[n.tree.index()]
        );
    }
    println!(
        "accessed {}/{} trees ({:.1}%) — the filter pruned the rest",
        stats.refined,
        stats.dataset_size,
        stats.accessed_percent()
    );

    let (in_range, _) = engine.range(t1, 1);
    println!("\ntrees within edit distance 1 of T1:");
    for n in &in_range {
        println!("  tree {:>2}  distance {}", n.tree.0, n.distance);
    }
}
