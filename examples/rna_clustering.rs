//! Clustering RNA secondary structures — the paper's biology motivation:
//! the function of an RNA molecule follows its secondary structure, which
//! is naturally a rooted ordered tree. Similar structures ⇒ likely similar
//! function.
//!
//! Structures are given in dot-bracket notation (`(((...)))` etc.) and
//! converted to trees with `pair` internal nodes and `base` leaves; a
//! simple threshold clustering over range queries groups the molecules.
//!
//! ```text
//! cargo run --example rna_clustering
//! ```

use treesim::prelude::*;
use treesim::tree::parse::dot_bracket;

fn main() {
    // Three structural families: simple hairpins, cloverleafs (tRNA-like)
    // and bulged stems — with small variations inside each family.
    let families: [(&str, &[&str]); 3] = [
        (
            "hairpin",
            &[
                "((((....))))",
                "(((....)))",
                "((((.....))))",
                "(((((....)))))",
            ],
        ),
        (
            "cloverleaf",
            &[
                "((..((...))..((...))..((...))..))",
                "((..((....))..((...))..((...)).))",
                "((.((...))..((....))..((...))..))",
            ],
        ),
        (
            "bulged stem",
            &[
                "(((..(((...)))..)))",
                "(((..((....))...)))",
                "((...(((...)))..))",
            ],
        ),
    ];

    let mut forest = Forest::new();
    let mut names = Vec::new();
    {
        let mut interner = forest.interner().clone();
        for (family, structures) in &families {
            for (i, s) in structures.iter().enumerate() {
                let tree = dot_bracket::parse(&mut interner, s).unwrap();
                forest.push(tree);
                names.push(format!("{family}-{i}"));
            }
        }
        *forest.interner_mut() = interner;
    }
    println!("{} RNA structures loaded", forest.len());

    // Threshold clustering: two structures belong together when their tree
    // edit distance is ≤ τ; the engine's range query does the heavy lifting
    // (and the binary branch filter avoids most edit-distance calls).
    let tau = 4u32;
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );

    let n = forest.len();
    let mut cluster_of: Vec<Option<usize>> = vec![None; n];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut refined_total = 0usize;
    for i in 0..n {
        if cluster_of[i].is_some() {
            continue;
        }
        let cluster_id = clusters.len();
        clusters.push(Vec::new());
        // Flood fill over the τ-neighborhood graph.
        let mut frontier = vec![i];
        cluster_of[i] = Some(cluster_id);
        while let Some(member) = frontier.pop() {
            clusters[cluster_id].push(member);
            let (hits, stats) = engine.range(forest.tree(TreeId(member as u32)), tau);
            refined_total += stats.refined;
            for hit in hits {
                let j = hit.tree.index();
                if cluster_of[j].is_none() {
                    cluster_of[j] = Some(cluster_id);
                    frontier.push(j);
                }
            }
        }
    }

    println!("\nclusters at edit-distance threshold τ = {tau}:");
    for (id, members) in clusters.iter().enumerate() {
        let mut labels: Vec<&str> = members.iter().map(|&m| names[m].as_str()).collect();
        labels.sort_unstable();
        println!("  cluster {id}: {}", labels.join(", "));
    }
    println!(
        "\n{} edit-distance computations over {} range queries (brute force would need {})",
        refined_total,
        n,
        n * n
    );

    // Each family should form one cluster.
    assert_eq!(
        clusters.len(),
        families.len(),
        "expected one cluster per family"
    );
}
