//! Document version management — the paper's versioning motivation: given
//! a repository of structured-document revisions, find the revisions
//! closest to an edited working copy, and show how the q-level resolution
//! knob (Theorem 3.3) trades filter precision for vector size.
//!
//! ```text
//! cargo run --example version_history
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use treesim::datagen::mutate::apply_random_ops;
use treesim::prelude::*;

fn main() {
    // ── 1. A revision history: each version is a few edits from its parent.
    let mut forest = Forest::new();
    let base_spec = "doc(head(title meta) body(sec(p p) sec(p fig(img cap)) sec(p p p)))";
    forest.parse_bracket(base_spec).unwrap();

    let labels: Vec<LabelId> = forest
        .interner()
        .iter()
        .map(|(id, _)| id)
        .filter(|id| !id.is_epsilon())
        .collect();
    let mut rng = StdRng::seed_from_u64(2026);
    let versions = 40usize;
    for v in 1..versions {
        let parent = forest.tree(TreeId((v - 1) as u32)).clone();
        let (child, _) = apply_random_ops(&parent, 2, &labels, &mut rng);
        forest.push(child);
    }
    println!("revision history: {} versions of {base_spec}", forest.len());

    // ── 2. A working copy: version 20 with three more local edits. ───────
    let working = {
        let v20 = forest.tree(TreeId(20)).clone();
        apply_random_ops(&v20, 3, &labels, &mut rng).0
    };

    // ── 3. Which stored revisions are closest? ───────────────────────────
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let (closest, stats) = engine.knn(&working, 5);
    println!("\n5 revisions closest to the working copy:");
    for hit in &closest {
        println!("  v{:<3} edit distance {}", hit.tree.0, hit.distance);
    }
    println!(
        "accessed {:.1}% of the history (the lower bound pruned the rest)",
        stats.accessed_percent()
    );

    // ── 4. What changed? Recover the optimal edit script (diff). ─────────
    let nearest = forest.tree(closest[0].tree).clone();
    let applied = treesim::edit::diff(&nearest, &working, &UnitCost);
    println!(
        "\ndiff v{} → working copy: {} operations",
        closest[0].tree.0,
        applied.ops.len()
    );
    for op in applied.ops.iter().take(6) {
        println!("  {op:?}");
    }
    assert_eq!(
        applied.result, working,
        "the script reproduces the working copy"
    );

    // ── 5. The resolution knob: BDist_q tightens as q grows. ─────────────
    println!("\nq-level resolution (Theorem 3.3: BDist_q ≤ [4(q−1)+1]·EDist):");
    let v0 = forest.tree(TreeId(0));
    let v_last = forest.tree(TreeId((versions - 1) as u32));
    let edist = edit_distance(v0, v_last);
    println!("  EDist(v0, v{}) = {edist}", versions - 1);
    for q in 2..=4 {
        let bdist = binary_branch_distance(v0, v_last, q);
        let factor = treesim::core::bound_factor(q);
        println!(
            "  q={q}: BDist_q = {bdist:>3}  factor {factor:>2}  ⇒ lower bound {}",
            bdist.div_ceil(factor)
        );
        assert!(bdist <= factor * edist);
    }
}
