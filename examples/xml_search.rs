//! XML similarity search under spelling errors — the paper's motivating
//! database scenario: find bibliographic records similar to a query even
//! when fields are misspelled, missing or reordered.
//!
//! ```text
//! cargo run --release --example xml_search
//! ```

use treesim::datagen::dblp::{generate_records, DblpConfig};
use treesim::prelude::*;
use treesim::tree::parse::xml::XmlOptions;

fn main() {
    // ── 1. Ingest a corpus of XML records through the XML parser. ────────
    let mut forest = Forest::new();
    let records = generate_records(&DblpConfig::with_count(500, 42));
    for record in &records {
        forest
            .parse_xml(&record.xml, XmlOptions::WITH_TEXT)
            .unwrap();
    }
    let stats = forest.stats();
    println!(
        "corpus: {} records, avg size {:.1} nodes, {} distinct labels",
        forest.len(),
        stats.avg_size,
        stats.distinct_labels
    );

    // ── 2. A query: one of the records, corrupted the way dirty data is —
    //       a misspelled author, a dropped field, an extra empty element. ──
    let original = &records[17].xml;
    let corrupted = original
        .replacen("</author>", "x</author>", 1) // typo in an author name
        .replacen("<year>", "<yr>", 1) // wrong tag
        .replacen("</year>", "</yr>", 1)
        .replacen("</title>", "</title><note/>", 1); // stray empty field
    let query = {
        let mut interner = forest.interner().clone();
        let tree =
            treesim::tree::parse::xml::parse(&mut interner, &corrupted, XmlOptions::WITH_TEXT)
                .unwrap();
        *forest.interner_mut() = interner;
        tree
    };
    println!("\nquery = record #17 with a typo, a renamed tag and a stray field");

    // ── 3. Search with the binary branch filter. ─────────────────────────
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let (hits, search_stats) = engine.knn(&query, 5);

    println!("\ntop-5 most similar records:");
    for hit in &hits {
        let kind = records[hit.tree.index()].kind;
        let marker = if hit.tree.index() == 17 {
            "  ← the original"
        } else {
            ""
        };
        println!(
            "  record {:>3} ({kind:>13})  edit distance {}{marker}",
            hit.tree.0, hit.distance
        );
    }
    // The generator emits clusters of near-duplicate records (like real
    // DBLP), so siblings of record 17 may tie with it — but the original
    // must be among the nearest hits.
    assert!(
        hits.iter().any(|h| h.tree.index() == 17),
        "the corrupted query should find its original among the top hits"
    );
    println!(
        "\nfilter efficiency: computed the real edit distance for only {}/{} records ({:.1}%)",
        search_stats.refined,
        search_stats.dataset_size,
        search_stats.accessed_percent()
    );

    // ── 4. Compare against the histogram baseline on the same query. ─────
    let histo_engine = SearchEngine::new(&forest, HistogramFilter::build(&forest));
    let (_, histo_stats) = histo_engine.knn(&query, 5);
    println!(
        "histogram baseline accessed {:.1}% on the same query (see the fig13/fig14\nexperiments for the averaged comparison across workloads)",
        histo_stats.accessed_percent()
    );
}
