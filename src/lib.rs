//! # treesim — similarity evaluation on tree-structured data
//!
//! A Rust implementation of *Similarity Evaluation on Tree-structured Data*
//! (Yang, Kalnis, Tung — SIGMOD 2005): the **binary branch embedding** of
//! rooted, ordered, labeled trees into L1 vector space, whose distance
//! lower-bounds the tree edit distance and drives a filter-and-refine
//! similarity search engine.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tree`] | `treesim-tree` | arena trees, interner, parsers, binary view, datasets |
//! | [`edit`] | `treesim-edit` | Zhang–Shasha edit distance, cost models, bounds |
//! | [`core`] | `treesim-core` | binary branch vectors, q-level branches, positional bounds, inverted file index |
//! | [`histogram`] | `treesim-histogram` | the histogram-filter baseline |
//! | [`datagen`] | `treesim-datagen` | the paper's synthetic + DBLP-style generators |
//! | [`search`] | `treesim-search` | filter-and-refine k-NN / range engine |
//!
//! ## Quick start
//!
//! ```
//! use treesim::prelude::*;
//!
//! // A dataset of XML-ish trees.
//! let mut forest = Forest::new();
//! forest.parse_bracket("article(author title year journal)").unwrap();
//! forest.parse_bracket("article(author author title year)").unwrap();
//! forest.parse_bracket("book(author title publisher)").unwrap();
//!
//! // Index it with the paper's binary branch filter and search.
//! let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
//! let engine = SearchEngine::new(&forest, filter);
//! let (hits, stats) = engine.knn(forest.tree(TreeId(0)), 2);
//! assert_eq!(hits[0].distance, 0); // the query itself
//! assert!(stats.refined <= forest.len());
//! ```

#![warn(missing_docs)]

pub use treesim_core as core;
pub use treesim_datagen as datagen;
pub use treesim_edit as edit;
pub use treesim_histogram as histogram;
pub use treesim_search as search;
pub use treesim_tree as tree;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use treesim_core::{
        binary_branch_distance, BranchVector, BranchVocab, InvertedFileIndex, PositionalVector,
        QueryVocab,
    };
    pub use treesim_edit::{
        diff, edit_distance, edit_distance_with, edit_mapping, TreeInfo, UnitCost, ZsWorkspace,
    };
    pub use treesim_histogram::HistogramVector;
    pub use treesim_search::{
        similarity_join, similarity_self_join, subtree_search, threshold_clusters, BiBranchFilter,
        BiBranchMode, Clustering, DynamicIndex, Filter, HistogramFilter, KnnClassifier, MaxFilter,
        Neighbor, NoFilter, SearchEngine, SearchStats,
    };
    pub use treesim_tree::{
        BinaryView, Forest, LabelId, LabelInterner, NodeId, Tree, TreeBuilder, TreeId,
    };
}
