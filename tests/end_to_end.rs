//! End-to-end pipeline tests spanning every crate: generate → parse →
//! index → search → verify against brute force.

use treesim::datagen::dblp::{generate_forest, DblpConfig};
use treesim::datagen::normal::Normal;
use treesim::datagen::synthetic::{generate, SyntheticConfig};
use treesim::prelude::*;
use treesim::tree::parse::xml::XmlOptions;

fn synthetic_forest(trees: usize, seed: u64) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(3.0, 0.8),
        size: Normal::new(20.0, 4.0),
        label_count: 8,
        decay: 0.1,
        seed_count: 5,
        tree_count: trees,
        rng_seed: seed,
    })
}

fn brute_force_knn(forest: &Forest, query: &Tree, k: usize) -> Vec<u64> {
    let mut distances: Vec<u64> = forest
        .iter()
        .map(|(_, t)| edit_distance(query, t))
        .collect();
    distances.sort_unstable();
    distances.truncate(k);
    distances
}

#[test]
fn synthetic_pipeline_bibranch_knn_equals_brute_force() {
    let forest = synthetic_forest(80, 11);
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    for query_id in [0u32, 17, 42, 79] {
        let query = forest.tree(TreeId(query_id));
        let (hits, stats) = engine.knn(query, 7);
        let got: Vec<u64> = hits.iter().map(|n| n.distance).collect();
        assert_eq!(got, brute_force_knn(&forest, query, 7));
        assert!(stats.refined <= forest.len());
        assert!(stats.refined >= hits.len());
    }
}

#[test]
fn synthetic_pipeline_all_filters_agree_on_range() {
    let forest = synthetic_forest(60, 12);
    let query = forest.tree(TreeId(33));
    let tau = 6u32;

    let bibranch = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let plain = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Plain),
    );
    let histo = SearchEngine::new(&forest, HistogramFilter::build(&forest));
    let sequential = SearchEngine::new(&forest, NoFilter::build(&forest));

    let reference: Vec<(TreeId, u64)> = sequential
        .range(query, tau)
        .0
        .into_iter()
        .map(|n| (n.tree, n.distance))
        .collect();
    for engine_results in [
        bibranch.range(query, tau).0,
        plain.range(query, tau).0,
        histo.range(query, tau).0,
    ] {
        let got: Vec<(TreeId, u64)> = engine_results
            .into_iter()
            .map(|n| (n.tree, n.distance))
            .collect();
        assert_eq!(got, reference);
    }
}

#[test]
fn xml_ingestion_to_search() {
    let mut forest = Forest::new();
    let docs = [
        "<article><author>A</author><title>trees</title><year>2004</year></article>",
        "<article><author>A</author><title>trees</title><year>2005</year></article>",
        "<article><author>B</author><author>C</author><title>graphs</title></article>",
        "<inproceedings><author>A</author><title>trees</title><booktitle>X</booktitle></inproceedings>",
    ];
    for doc in docs {
        forest.parse_xml(doc, XmlOptions::WITH_TEXT).unwrap();
    }
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let (hits, _) = engine.knn(forest.tree(TreeId(0)), 2);
    assert_eq!(hits[0].tree, TreeId(0));
    assert_eq!(hits[0].distance, 0);
    // The year-only variant is the nearest non-identical record.
    assert_eq!(hits[1].tree, TreeId(1));
    assert_eq!(hits[1].distance, 1);
}

#[test]
fn dblp_dataset_statistics_and_search() {
    let forest = generate_forest(&DblpConfig::with_count(300, 99));
    let stats = forest.stats();
    assert!((8.0..13.0).contains(&stats.avg_size));
    assert!(stats.avg_height <= 3.0);

    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let query = forest.tree(TreeId(100));
    let (hits, stats) = engine.knn(query, 5);
    assert_eq!(hits.len(), 5);
    assert_eq!(hits[0].distance, 0);
    // Clustered data: the 5 nearest records are close, and the filter
    // avoids refining most of the dataset.
    assert!(hits[4].distance <= 8);
    assert!(
        stats.accessed_percent() < 60.0,
        "accessed {:.1}%",
        stats.accessed_percent()
    );
}

#[test]
fn inverted_file_index_drives_the_same_results() {
    let forest = synthetic_forest(40, 13);
    let index = InvertedFileIndex::build(&forest, 2);
    assert_eq!(index.posting_count(), forest.stats().total_nodes);

    let via_index = SearchEngine::new(
        &forest,
        BiBranchFilter::from_index(&index, BiBranchMode::Positional),
    );
    let direct = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let query = forest.tree(TreeId(5));
    let a: Vec<u64> = via_index
        .knn(query, 5)
        .0
        .iter()
        .map(|n| n.distance)
        .collect();
    let b: Vec<u64> = direct.knn(query, 5).0.iter().map(|n| n.distance).collect();
    assert_eq!(a, b);
}

#[test]
fn q_level_engines_are_all_complete() {
    let forest = synthetic_forest(40, 14);
    let query = forest.tree(TreeId(7));
    let reference = brute_force_knn(&forest, query, 5);
    for q in 2..=4 {
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, q, BiBranchMode::Positional),
        );
        let got: Vec<u64> = engine.knn(query, 5).0.iter().map(|n| n.distance).collect();
        assert_eq!(got, reference, "q={q}");
    }
}

#[test]
fn bracket_file_roundtrip_preserves_search_results() {
    let forest = synthetic_forest(30, 15);
    // Serialize to bracket text and re-parse into a fresh forest.
    let mut text = String::new();
    for (_, tree) in forest.iter() {
        text.push_str(&treesim::tree::parse::bracket::to_string(
            tree,
            forest.interner(),
        ));
        text.push('\n');
    }
    let mut reloaded = Forest::new();
    {
        let mut interner = reloaded.interner().clone();
        for tree in treesim::tree::parse::bracket::parse_many(&mut interner, &text).unwrap() {
            reloaded.push(tree);
        }
        *reloaded.interner_mut() = interner;
    }
    assert_eq!(reloaded.len(), forest.len());

    let engine_a = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let engine_b = SearchEngine::new(
        &reloaded,
        BiBranchFilter::build(&reloaded, 2, BiBranchMode::Positional),
    );
    let qa = forest.tree(TreeId(3));
    let qb = reloaded.tree(TreeId(3));
    let a: Vec<u64> = engine_a.knn(qa, 4).0.iter().map(|n| n.distance).collect();
    let b: Vec<u64> = engine_b.knn(qb, 4).0.iter().map(|n| n.distance).collect();
    assert_eq!(a, b);
}
