//! Cross-crate integration tests for the extension APIs: edit scripts,
//! subtree pattern search, dynamic indexing, joins and persistence working
//! together on one realistic corpus.

use treesim::datagen::dblp::{generate_forest, DblpConfig};
use treesim::datagen::zaki::{self, ZakiConfig};
use treesim::prelude::*;
use treesim::search::{closest_pairs, similarity_self_join};

#[test]
fn diff_pipeline_on_dblp_records() {
    let forest = generate_forest(&DblpConfig::with_count(40, 5));
    // Diff every record against its cluster predecessor; scripts must
    // reproduce the target with exactly EDist operations.
    for i in 1..10u32 {
        let t1 = forest.tree(TreeId(i - 1));
        let t2 = forest.tree(TreeId(i));
        let applied = treesim::edit::diff(t1, t2, &UnitCost);
        assert_eq!(&applied.result, t2);
        assert_eq!(applied.ops.len() as u64, edit_distance(t1, t2));
    }
}

#[test]
fn subtree_search_inside_a_zaki_master() {
    let (master, forest) = zaki::generate(&ZakiConfig {
        master_size: 120,
        max_fanout: 4,
        label_count: 5,
        inclusion_probability: 0.8,
        tree_count: 3,
        min_tree_size: 8,
        rng_seed: 3,
    });
    // Every derived tree is the master with some subtrees pruned, so the
    // master's own root subtree is within exactly `pruned node count` =
    // `|master| − |derived|` deletions of the derived tree. That size gap
    // is the only guaranteed match radius: capping τ below it (as an
    // earlier version of this test did with `.min(40)`) makes the
    // assertion depend on how aggressively this particular seed pruned.
    let derived = forest.tree(TreeId(0));
    let tau = (master.len() - derived.len()) as u32;
    let (matches, stats) = treesim::search::subtree_search(&master, derived, tau, 2);
    assert!(
        !matches.is_empty(),
        "a pruned copy must match inside its master"
    );
    assert!(stats.refined <= stats.candidates);
}

#[test]
fn dynamic_index_ingest_then_persist_dataset() {
    // Ingest records one by one, query mid-stream, then persist the forest
    // with the binary codec and verify results survive the round trip.
    let source = generate_forest(&DblpConfig::with_count(60, 8));
    let index = treesim::search::DynamicIndex::from_forest(source.clone(), 2);
    let query = source.tree(TreeId(30)).clone();
    let (before, _) = index.knn(&query, 5);

    let bytes = treesim::tree::codec::encode_forest(index.forest());
    let reloaded = treesim::tree::codec::decode_forest(&bytes).unwrap();
    let engine = SearchEngine::new(
        &reloaded,
        BiBranchFilter::build(&reloaded, 2, BiBranchMode::Positional),
    );
    // Re-express the query in the reloaded interner via bracket round trip.
    let rendered = treesim::tree::parse::bracket::to_string(&query, source.interner());
    let mut reloaded2 = reloaded.clone();
    let query2 = {
        let mut interner = reloaded2.interner().clone();
        let t = treesim::tree::parse::bracket::parse(&mut interner, &rendered).unwrap();
        *reloaded2.interner_mut() = interner;
        t
    };
    let engine2 = SearchEngine::new(
        &reloaded2,
        BiBranchFilter::build(&reloaded2, 2, BiBranchMode::Positional),
    );
    drop(engine);
    let (after, _) = engine2.knn(&query2, 5);
    let before_d: Vec<u64> = before.iter().map(|n| n.distance).collect();
    let after_d: Vec<u64> = after.iter().map(|n| n.distance).collect();
    assert_eq!(before_d, after_d);
}

#[test]
fn closest_pairs_agree_with_join_floor() {
    let forest = generate_forest(&DblpConfig::with_count(50, 2));
    let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
    let (top, _) = closest_pairs(&forest, &filter, 5);
    assert_eq!(top.len(), 5);
    // Every top pair must also appear in a τ-join at its own distance.
    let tau = top.last().unwrap().distance as u32;
    let (joined, _) = similarity_self_join(&forest, &filter, tau);
    for pair in &top {
        assert!(
            joined
                .iter()
                .any(|j| j.left == pair.left && j.right == pair.right),
            "top pair missing from the join"
        );
    }
    // Distances ascend.
    assert!(top.windows(2).all(|w| w[0].distance <= w[1].distance));
}

#[test]
fn incremental_vectors_agree_with_filter_bounds() {
    use treesim::core::IncrementalTree;
    let forest = generate_forest(&DblpConfig::with_count(10, 11));
    let a = forest.tree(TreeId(0)).clone();
    let b = forest.tree(TreeId(5)).clone();
    let inc_a = IncrementalTree::new(a.clone(), 2);
    let inc_b = IncrementalTree::new(b.clone(), 2);
    assert_eq!(inc_a.bdist(&inc_b), binary_branch_distance(&a, &b, 2));
}
