//! Failure injection and degenerate inputs across the public API.

use treesim::prelude::*;
use treesim::tree::parse::xml::XmlOptions;
use treesim::tree::ParseError;

#[test]
fn malformed_bracket_inputs_error_cleanly() {
    let mut forest = Forest::new();
    for bad in ["", "   ", "(", "a(b", "a)b", "'unclosed", "a b"] {
        assert!(
            forest.parse_bracket(bad).is_err(),
            "accepted malformed input {bad:?}"
        );
    }
    assert!(
        forest.is_empty(),
        "failed parses must not pollute the forest"
    );
}

#[test]
fn malformed_xml_inputs_error_cleanly() {
    let mut forest = Forest::new();
    for bad in [
        "",
        "<a>",
        "<a></b>",
        "<a attr=></a>",
        "<a>&nope;</a>",
        "<a/><trailing/>",
    ] {
        let result = forest.parse_xml(bad, XmlOptions::WITH_TEXT);
        if bad == "<a/><trailing/>" {
            assert!(matches!(result, Err(ParseError::TrailingInput { .. })));
        } else {
            assert!(result.is_err(), "accepted malformed XML {bad:?}");
        }
    }
}

#[test]
fn single_node_trees_everywhere() {
    let mut forest = Forest::new();
    forest.parse_bracket("a").unwrap();
    forest.parse_bracket("b").unwrap();
    forest.parse_bracket("a").unwrap();

    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let (hits, _) = engine.knn(forest.tree(TreeId(0)), 3);
    assert_eq!(hits.len(), 3);
    assert_eq!(hits[0].distance, 0);
    assert_eq!(hits[1].distance, 0); // the duplicate "a"
    assert_eq!(hits[2].distance, 1); // relabel to "b"

    let (in_range, _) = engine.range(forest.tree(TreeId(1)), 0);
    assert_eq!(in_range.len(), 1);
}

#[test]
fn extreme_shapes_deep_chain_vs_flat_star() {
    let mut forest = Forest::new();
    let chain = format!("{}a{}", "a(".repeat(99), ")".repeat(99));
    let star = format!("a({})", "a ".repeat(99));
    forest.parse_bracket(&chain).unwrap();
    forest.parse_bracket(&star).unwrap();
    let t_chain = forest.tree(TreeId(0));
    let t_star = forest.tree(TreeId(1));
    assert_eq!(t_chain.len(), 100);
    assert_eq!(t_star.len(), 100);
    assert_eq!(t_chain.height(), 100);
    assert_eq!(t_star.height(), 2);

    let edist = edit_distance(t_chain, t_star);
    let mut vocab = BranchVocab::new(2);
    let v1 = PositionalVector::build(t_chain, &mut vocab);
    let v2 = PositionalVector::build(t_star, &mut vocab);
    assert!(v1.bdist(&v2) <= 5 * edist);
    assert!(v1.optimistic_bound(&v2) <= edist);
    // The height difference alone shows these are ~98 edits apart.
    assert!(edist >= 98);
}

#[test]
fn query_with_labels_unknown_to_the_dataset() {
    let mut forest = Forest::new();
    forest.parse_bracket("a(b c)").unwrap();
    forest.parse_bracket("a(b d)").unwrap();
    // The query uses labels never seen at indexing time.
    let query = {
        let mut interner = forest.interner().clone();
        let t = treesim::tree::parse::bracket::parse(&mut interner, "zz(yy xx)").unwrap();
        *forest.interner_mut() = interner;
        t
    };
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let (hits, _) = engine.knn(&query, 2);
    assert_eq!(hits.len(), 2);
    for hit in &hits {
        assert_eq!(
            hit.distance,
            edit_distance(&query, forest.tree(hit.tree)),
            "distances must stay exact for out-of-vocabulary queries"
        );
    }
}

#[test]
fn knn_edge_cases() {
    let mut forest = Forest::new();
    forest.parse_bracket("a(b)").unwrap();
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let query = forest.tree(TreeId(0));
    assert!(engine.knn(query, 0).0.is_empty());
    assert_eq!(engine.knn(query, 10).0.len(), 1);
    let (hits, stats) = engine.range(query, 1000);
    assert_eq!(hits.len(), 1);
    assert_eq!(stats.results, 1);
}

#[test]
fn builder_misuse_is_detected() {
    let mut builder = TreeBuilder::new();
    assert!(builder.close().is_err());
    let mut interner = LabelInterner::new();
    builder.open(interner.intern("a"));
    assert!(builder.finish().is_err());
}

#[test]
fn deleting_every_deletable_node_leaves_the_root() {
    let mut forest = Forest::new();
    forest.parse_bracket("a(b(c d) e(f))").unwrap();
    let mut tree = forest.tree(TreeId(0)).clone();
    loop {
        let victim = tree.preorder().find(|&n| n != tree.root());
        match victim {
            Some(node) => tree.remove_node(node).unwrap(),
            None => break,
        }
        tree.validate().unwrap();
    }
    assert_eq!(tree.len(), 1);
    assert!(tree.remove_node(tree.root()).is_err());
}
