//! Workspace-wide property tests: every lower-bound provider in the system
//! is validated at once against the exact edit distance, and the full
//! engine is validated against brute force with out-of-dataset queries.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use treesim::datagen::mutate::apply_random_ops;
use treesim::datagen::normal::Normal;
use treesim::datagen::synthetic::{generate, SyntheticConfig};
use treesim::prelude::*;

fn random_forest(seed: u64, count: usize, size_mean: f64) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(2.5, 1.0),
        size: Normal::new(size_mean, 3.0),
        label_count: 5,
        decay: 0.25,
        seed_count: 3.min(count),
        tree_count: count,
        rng_seed: seed,
    })
}

/// Every bound the workspace can produce for a pair of trees.
fn all_lower_bounds(t1: &Tree, t2: &Tree) -> Vec<(String, u64)> {
    let mut bounds = Vec::new();
    for q in 2..=4usize {
        let mut vocab = BranchVocab::new(q);
        let v1 = PositionalVector::build(t1, &mut vocab);
        let v2 = PositionalVector::build(t2, &mut vocab);
        bounds.push((
            format!("bdist(q={q})/factor"),
            v1.bdist(&v2).div_ceil(treesim::core::bound_factor(q)),
        ));
        bounds.push((format!("propt(q={q})"), v1.optimistic_bound(&v2)));
    }
    let h1 = HistogramVector::build(t1);
    let h2 = HistogramVector::build(t2);
    bounds.push(("histogram".into(), h1.lower_bound(&h2)));
    bounds.push((
        "size/height/leaf".into(),
        treesim::edit::bounds::combined_lower_bound(t1, t2),
    ));
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every lower bound in the system respects the exact distance.
    #[test]
    fn all_bounds_below_edit_distance(seed in 0u64..100_000) {
        let forest = random_forest(seed, 2, 10.0);
        let t1 = forest.tree(TreeId(0));
        let t2 = forest.tree(TreeId(1));
        let edist = edit_distance(t1, t2);
        for (name, bound) in all_lower_bounds(t1, t2) {
            prop_assert!(bound <= edist, "{name}: {bound} > EDist {edist}");
        }
    }

    /// …including after arbitrary edit sequences.
    #[test]
    fn all_bounds_after_k_ops(seed in 0u64..100_000, k in 0usize..6) {
        let forest = random_forest(seed, 1, 12.0);
        let t1 = forest.tree(TreeId(0));
        let labels: Vec<LabelId> = forest
            .interner()
            .iter()
            .map(|(id, _)| id)
            .filter(|id| !id.is_epsilon())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let (t2, ops) = apply_random_ops(t1, k, &labels, &mut rng);
        for (name, bound) in all_lower_bounds(t1, &t2) {
            prop_assert!(
                bound <= ops.len() as u64,
                "{name}: {bound} > k {}",
                ops.len()
            );
        }
    }

    /// The engine answers queries that are not dataset members exactly.
    #[test]
    fn engine_exact_for_external_queries(seed in 0u64..100_000) {
        let forest = random_forest(seed, 15, 9.0);
        let labels: Vec<LabelId> = forest
            .interner()
            .iter()
            .map(|(id, _)| id)
            .filter(|id| !id.is_epsilon())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe11e);
        let (query, _) = apply_random_ops(forest.tree(TreeId(0)), 4, &labels, &mut rng);

        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let mut truth: Vec<u64> = forest
            .iter()
            .map(|(_, t)| edit_distance(&query, t))
            .collect();
        truth.sort_unstable();

        let got: Vec<u64> = engine.knn(&query, 6).0.iter().map(|n| n.distance).collect();
        prop_assert_eq!(&got[..], &truth[..6]);

        let tau = truth[3] as u32;
        let (range_hits, _) = engine.range(&query, tau);
        let expected = truth.iter().filter(|&&d| d <= u64::from(tau)).count();
        prop_assert_eq!(range_hits.len(), expected);
    }
}
