//! Workspace-wide property tests: every lower-bound provider in the system
//! is validated at once against the exact edit distance, and the full
//! engine is validated against brute force with out-of-dataset queries.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use treesim::datagen::mutate::apply_random_ops;
use treesim::datagen::normal::Normal;
use treesim::datagen::synthetic::{generate, SyntheticConfig};
use treesim::prelude::*;

fn random_forest(seed: u64, count: usize, size_mean: f64) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(2.5, 1.0),
        size: Normal::new(size_mean, 3.0),
        label_count: 5,
        decay: 0.25,
        seed_count: 3.min(count),
        tree_count: count,
        rng_seed: seed,
    })
}

/// Every bound the workspace can produce for a pair of trees.
fn all_lower_bounds(t1: &Tree, t2: &Tree) -> Vec<(String, u64)> {
    let mut bounds = Vec::new();
    for q in 2..=4usize {
        let mut vocab = BranchVocab::new(q);
        let v1 = PositionalVector::build(t1, &mut vocab);
        let v2 = PositionalVector::build(t2, &mut vocab);
        bounds.push((
            format!("bdist(q={q})/factor"),
            v1.bdist(&v2).div_ceil(treesim::core::bound_factor(q)),
        ));
        bounds.push((format!("propt(q={q})"), v1.optimistic_bound(&v2)));
    }
    let h1 = HistogramVector::build(t1);
    let h2 = HistogramVector::build(t2);
    bounds.push(("histogram".into(), h1.lower_bound(&h2)));
    bounds.push((
        "size/height/leaf".into(),
        treesim::edit::bounds::combined_lower_bound(t1, t2),
    ));
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every lower bound in the system respects the exact distance.
    #[test]
    fn all_bounds_below_edit_distance(seed in 0u64..100_000) {
        let forest = random_forest(seed, 2, 10.0);
        let t1 = forest.tree(TreeId(0));
        let t2 = forest.tree(TreeId(1));
        let edist = edit_distance(t1, t2);
        for (name, bound) in all_lower_bounds(t1, t2) {
            prop_assert!(bound <= edist, "{name}: {bound} > EDist {edist}");
        }
    }

    /// …including after arbitrary edit sequences.
    #[test]
    fn all_bounds_after_k_ops(seed in 0u64..100_000, k in 0usize..6) {
        let forest = random_forest(seed, 1, 12.0);
        let t1 = forest.tree(TreeId(0));
        let labels: Vec<LabelId> = forest
            .interner()
            .iter()
            .map(|(id, _)| id)
            .filter(|id| !id.is_epsilon())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let (t2, ops) = apply_random_ops(t1, k, &labels, &mut rng);
        for (name, bound) in all_lower_bounds(t1, &t2) {
            prop_assert!(
                bound <= ops.len() as u64,
                "{name}: {bound} > k {}",
                ops.len()
            );
        }
    }

    /// The staged bound cascade and the batch-parallel drivers return
    /// exactly what a filterless sequential scan returns — same distances
    /// AND same tree ids (smallest-id tie-breaking) — for every
    /// [`BiBranchMode`] and q ∈ {2, 3}.
    #[test]
    fn cascade_and_batch_match_sequential_scan(seed in 0u64..100_000) {
        let forest = random_forest(seed, 12, 8.0);
        let baseline = SearchEngine::new(&forest, NoFilter::build(&forest));
        let queries: Vec<&Tree> = forest.iter().map(|(_, t)| t).collect();
        let k = 4usize;
        let tau = 3u32;

        // Ground truth once per query, via the filterless engine.
        let knn_truth: Vec<Vec<(TreeId, u64)>> = queries
            .iter()
            .map(|q| baseline.knn(q, k).0.iter().map(|n| (n.tree, n.distance)).collect())
            .collect();
        let range_truth: Vec<Vec<(TreeId, u64)>> = queries
            .iter()
            .map(|q| baseline.range(q, tau).0.iter().map(|n| (n.tree, n.distance)).collect())
            .collect();

        for q in [2usize, 3] {
            for mode in [BiBranchMode::Plain, BiBranchMode::Positional] {
                let engine = SearchEngine::new(&forest, BiBranchFilter::build(&forest, q, mode));
                for (i, query) in queries.iter().enumerate() {
                    let (knn, stats) = engine.knn(query, k);
                    let got: Vec<(TreeId, u64)> =
                        knn.iter().map(|n| (n.tree, n.distance)).collect();
                    prop_assert_eq!(&got, &knn_truth[i], "knn q={} mode={:?}", q, mode);
                    // The cascade never does MORE final-stage work than the
                    // dataset size (the pre-cascade ceiling).
                    prop_assert!(stats.final_stage_evaluated() <= forest.len());

                    let (range, _) = engine.range(query, tau);
                    let got: Vec<(TreeId, u64)> =
                        range.iter().map(|n| (n.tree, n.distance)).collect();
                    prop_assert_eq!(&got, &range_truth[i], "range q={} mode={:?}", q, mode);
                }
                // Batch-parallel drivers agree with per-query truth too.
                let knn_batch = engine.knn_batch_threads(&queries, k, 3);
                let range_batch = engine.range_batch_threads(&queries, tau, 3);
                for i in 0..queries.len() {
                    let got: Vec<(TreeId, u64)> =
                        knn_batch[i].0.iter().map(|n| (n.tree, n.distance)).collect();
                    prop_assert_eq!(&got, &knn_truth[i], "batch knn q={} mode={:?}", q, mode);
                    let got: Vec<(TreeId, u64)> =
                        range_batch[i].0.iter().map(|n| (n.tree, n.distance)).collect();
                    prop_assert_eq!(&got, &range_truth[i], "batch range q={} mode={:?}", q, mode);
                }
            }
        }
    }

    /// The cascade stays exact under a non-unit cost model: the engine
    /// scales operation-count bounds by the minimum operation cost, and
    /// results must match a weighted filterless scan, ids included.
    #[test]
    fn weighted_cascade_matches_weighted_scan(seed in 0u64..100_000) {
        use treesim::edit::WeightedCost;
        let forest = random_forest(seed, 10, 8.0);
        let weighted = WeightedCost { relabel: 3, delete: 2, insert: 2 };
        let baseline = SearchEngine::with_cost(&forest, NoFilter::build(&forest), weighted);
        let engine = SearchEngine::with_cost(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            weighted,
        );
        for (_, query) in forest.iter() {
            let want: Vec<(TreeId, u64)> = baseline
                .knn(query, 5).0.iter().map(|n| (n.tree, n.distance)).collect();
            let got: Vec<(TreeId, u64)> = engine
                .knn(query, 5).0.iter().map(|n| (n.tree, n.distance)).collect();
            prop_assert_eq!(&got, &want);
            for tau in [0u32, 4, 9] {
                let want: Vec<(TreeId, u64)> = baseline
                    .range(query, tau).0.iter().map(|n| (n.tree, n.distance)).collect();
                let got: Vec<(TreeId, u64)> = engine
                    .range(query, tau).0.iter().map(|n| (n.tree, n.distance)).collect();
                prop_assert_eq!(&got, &want, "τ={}", tau);
            }
        }
    }

    /// The engine answers queries that are not dataset members exactly.
    #[test]
    fn engine_exact_for_external_queries(seed in 0u64..100_000) {
        let forest = random_forest(seed, 15, 9.0);
        let labels: Vec<LabelId> = forest
            .interner()
            .iter()
            .map(|(id, _)| id)
            .filter(|id| !id.is_epsilon())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe11e);
        let (query, _) = apply_random_ops(forest.tree(TreeId(0)), 4, &labels, &mut rng);

        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let mut truth: Vec<u64> = forest
            .iter()
            .map(|(_, t)| edit_distance(&query, t))
            .collect();
        truth.sort_unstable();

        let got: Vec<u64> = engine.knn(&query, 6).0.iter().map(|n| n.distance).collect();
        prop_assert_eq!(&got[..], &truth[..6]);

        let tau = truth[3] as u32;
        let (range_hits, _) = engine.range(&query, tau);
        let expected = truth.iter().filter(|&&d| d <= u64::from(tau)).count();
        prop_assert_eq!(range_hits.len(), expected);
    }
}
