//! Offline stand-in for the `bytes` crate, providing exactly the subset the
//! treesim binary codecs use: [`Bytes`], [`BytesMut`], [`Buf`] (implemented
//! for `&[u8]`) and [`BufMut`] (implemented for [`BytesMut`]).
//!
//! Unlike the real crate there is no reference-counted zero-copy sharing:
//! [`Bytes`] owns a plain `Vec<u8>`. The codecs only append, freeze, and
//! scan — semantics are identical for that usage.

use std::ops::Deref;

/// An immutable byte buffer (owning; no zero-copy sharing in this stub).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes `len` bytes into an owned [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain (as in the real crate).
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain (as in the real crate).
    fn get_u32_le(&mut self) -> u32;

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end of buffer");
        let (head, tail) = self.split_at(len);
        let out = Bytes::copy_from_slice(head);
        *self = tail;
        out
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.len() >= 4, "get_u32_le past end of buffer");
        let (head, tail) = self.split_at(4);
        let value = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        *self = tail;
        value
    }

    fn get_u8(&mut self) -> u8 {
        assert!(!self.is_empty(), "get_u8 past end of buffer");
        let value = self[0];
        *self = &self[1..];
        value
    }
}

/// Append access to a byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u32_le(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_u32_le(&mut self, value: u32) {
        self.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_and_slices() {
        let mut out = BytesMut::with_capacity(16);
        out.put_slice(b"MAGC");
        out.put_u32_le(0xdead_beef);
        out.put_u8(7);
        let frozen = out.freeze();
        assert_eq!(frozen.len(), 9);

        let mut cursor: &[u8] = &frozen;
        assert!(cursor.has_remaining());
        assert_eq!(cursor.copy_to_bytes(4).as_ref(), b"MAGC");
        assert_eq!(cursor.get_u32_le(), 0xdead_beef);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn to_vec_and_indexing_via_deref() {
        let bytes = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(bytes.to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(&bytes[..2], &[1, 2]);
    }
}
