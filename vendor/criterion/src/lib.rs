//! Offline stand-in for the `criterion` crate, used because this build
//! environment has no network access to crates.io.
//!
//! Implements the API subset the treesim benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `b.iter(..)` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! median-of-samples wall-clock measurement printed to stdout. No plots,
//! no statistics beyond the median, no baseline storage.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement harness handle passed to bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.effective_samples();
        run_benchmark(&id.into_benchmark_id().to_string(), samples, None, |b| f(b));
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples);
        self
    }

    /// Declares the per-iteration throughput (printed with results).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self
            .sample_size
            .unwrap_or_else(|| self.criterion.effective_samples());
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, samples, self.throughput, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self
            .sample_size
            .unwrap_or_else(|| self.criterion.effective_samples());
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, samples, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in this stub).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

/// Anything accepted where a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_owned(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: None,
        }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to bench closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: u64,
}

impl Bencher {
    /// Times `routine`, collecting one duration sample per configured
    /// sample, each averaging over an adaptively chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and pick an iteration count aiming at ~2ms per sample.
        let warmup_start = Instant::now();
        std::hint::black_box(routine());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.per_sample_iters = iters;

        let samples = self.samples.capacity().max(1);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        per_sample_iters: 0,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label}: no samples collected");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!(
                    "  ({:.0} elem/s)",
                    n as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE)
                )
            }
            Throughput::Bytes(n) => {
                format!(
                    "  ({:.0} B/s)",
                    n as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE)
                )
            }
        })
        .unwrap_or_default();
    println!(
        "{label}: median {median:?} over {} samples × {} iters{rate}",
        bencher.samples.len(),
        bencher.per_sample_iters,
    );
}

/// Re-export matching the real crate (benches may use either path).
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, &x| {
            b.iter(|| {
                count = count.wrapping_add(x);
                count
            })
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
