//! Offline stand-in for the `proptest` crate, used because this build
//! environment has no network access to crates.io.
//!
//! It implements the subset of the proptest API this repository's property
//! tests use — the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros, [`Strategy`] with `prop_map` / `prop_recursive` / `boxed`,
//! range and tuple strategies, [`collection::vec`], [`sample::select`] and
//! [`any`] — with deterministic case generation (seeded per test from the
//! test's module path) and **no shrinking**: a failing case reports its
//! inputs verbatim. `.proptest-regressions` files from the real crate are
//! ignored; deterministic regressions belong in explicit unit tests.

use std::fmt;
use std::marker::PhantomData;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic generator driving case generation.
pub mod test_runner {
    /// SplitMix64 generator seeded from the test's full path, so each test
    /// sees the same case sequence on every run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test identifier (FNV-1a hash).
        pub fn for_test(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index below `n` (`n > 0`).
        pub fn index(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub use test_runner::TestRng;

/// A source of random values for one parameter of a property.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// Generates values of an associated type from the test rng.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let strategy = self;
            BoxedStrategy {
                generate: Arc::new(move |rng| strategy.generate(rng)),
            }
        }

        /// Recursive strategy: starting from `self` as the leaf case,
        /// applies `recurse` up to `depth` times, mixing leaves back in at
        /// every level so generated structures stay bounded. The
        /// `_desired_size` / `_expected_branch_size` hints of the real
        /// crate are accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                let leaf = base.clone();
                current = BoxedStrategy {
                    generate: Arc::new(move |rng: &mut TestRng| {
                        if rng.next_f64() < 0.55 {
                            deeper.generate(rng)
                        } else {
                            leaf.generate(rng)
                        }
                    }),
                };
            }
            current
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        pub(crate) generate: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                generate: Arc::clone(&self.generate),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generate)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) strategy: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (start as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Types with a canonical whole-domain strategy (for [`any`]).
pub trait Arbitrary: Sized {
    /// Draws a value covering the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        length: Range<usize>,
    }

    /// A `Vec` of values from `element`, with length drawn from `length`.
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, length }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(
                self.length.start < self.length.end,
                "empty length range in collection::vec"
            );
            let span = self.length.end - self.length.start;
            let len = self.length.start + rng.index(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed set (see [`select`]).
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select of empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }
}

/// The `prop::` path alias used by `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, prop, Arbitrary, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let inputs = ::std::format!(
                        "{} = {:?}",
                        stringify!(($($arg),+)),
                        ($(&$arg,)+)
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(error) = outcome {
                        ::core::panic!(
                            "property `{}` failed at case {}: {}\n  inputs: {}",
                            stringify!($name),
                            case,
                            error,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respected(items in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(items.len() >= 2 && items.len() < 5);
        }

        #[test]
        fn tuples_and_select(pair in (1u32..5, 1u32..5), label in prop::sample::select(vec!["a", "b"])) {
            prop_assert!(pair.0 >= 1 && pair.1 < 5);
            prop_assert!(label == "a" || label == "b");
        }

        #[test]
        fn map_applies(s in (0u8..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(s % 2, 0);
        }
    }

    #[test]
    fn recursive_terminates() {
        use crate::test_runner::TestRng;
        let strategy = crate::sample::select(vec!["x"])
            .prop_map(str::to_owned)
            .prop_recursive(4, 24, 4, |inner| {
                crate::collection::vec(inner, 1..4)
                    .prop_map(|children| format!("n({})", children.join(" ")))
            });
        let mut rng = TestRng::for_test("recursive_terminates");
        for _ in 0..200 {
            let value = strategy.generate(&mut rng);
            assert!(!value.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
