//! Offline stand-in for the `rand` crate (0.10-style API surface), used
//! because this build environment has no network access to crates.io.
//!
//! Provides the subset treesim uses: the [`Rng`] core trait, the
//! [`RngExt`] extension methods (`random`, `random_range`, `random_bool`),
//! [`SeedableRng::seed_from_u64`], and a deterministic [`rngs::StdRng`]
//! built on SplitMix64. Streams differ from the real crate, but every
//! consumer in this repository only relies on determinism-for-a-seed and
//! reasonable uniformity, not on exact values.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A rng constructible from a seed.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable between two bounds.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let bonus = u128::from(inclusive);
                let span = (hi as i128 - lo as i128) as u128 + bonus;
                assert!(span > 0, "empty range in random_range");
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `rng.random_range(..)`. A single blanket impl per
/// range shape (as in the real crate) keeps type inference working for
/// untyped literals like `1..60`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty range in random_range");
        T::sample_between(rng, start, end, true)
    }
}

/// Convenience sampling methods available on every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform value over the type's natural domain (`[0, 1)` for
    /// floats, full range for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    ///
    /// Small state, passes basic uniformity tests, and is fully
    /// reproducible from `seed_from_u64` — all this repository needs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..8);
            assert!((3..8).contains(&x));
            let y = rng.random_range(1..=2usize);
            assert!((1..=2).contains(&y));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
