//! Offline stand-in for `serde`, used because this build environment has
//! no network access to crates.io.
//!
//! The repository derives `Serialize`/`Deserialize` on a handful of index
//! types for API compatibility but never serializes through serde (the
//! on-disk formats are the hand-written codecs in `treesim-tree` and
//! `treesim-core`). The traits here are therefore empty markers with
//! blanket impls, and the derive macros expand to nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
