//! No-op stand-in for `serde_derive`, used because this build environment
//! has no network access to crates.io.
//!
//! The repository only ever *derives* `Serialize`/`Deserialize` — nothing
//! serializes values through serde (the binary codecs are hand-written on
//! top of `bytes`). The companion `serde` stub provides blanket trait
//! impls, so these derives can expand to nothing at all.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde` stub's blanket impl already covers the
/// deriving type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde` stub's blanket impl already covers the
/// deriving type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
